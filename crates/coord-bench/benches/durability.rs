//! Durability cost and recovery speed of the `coord-store` subsystem.
//!
//! Workload: `n` queries in open partner chains of 8 (every member
//! requires its successor and the final partner never arrives), so the
//! whole workload stays pending — the regime where durability matters:
//! a crash would lose `n` in-flight entangled queries.
//!
//! The bench *asserts the durability analysis while it measures*:
//!
//! * **replay ≥ live**: recovery replays `snapshot + log tail` with
//!   `insert_pending` (no component evaluation), so rebuilding the
//!   pending set must be at least as fast as the live submit path that
//!   produced it;
//! * **recovery ≡ uninterrupted**: the recovered engine's pending set
//!   and component structure equal an engine that never crashed, and a
//!   subsequent coordination delivers identical answers;
//! * **snapshot amortization**: with periodic snapshots the replay tail
//!   is bounded by the snapshot interval, and live throughput stays
//!   within 2× of the snapshot-free path.

use coord_core::engine::CoordinationEngine;
use coord_core::persist::{DurabilityOptions, DurableCoordinationEngine, DurableSharedEngine};
use coord_core::EntangledQuery;
use coord_gen::workloads::{partner_query, pool_db};
use coord_store::temp::TempDir;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

const CHAIN: usize = 8;

/// `n` queries in open chains: member `i` requires member `i + 1`; the
/// last member of chain `g` requires user `n + g`, who never arrives
/// (ids stay inside the pool table so a late [`keystone`] can ground).
fn open_chains(n: usize) -> Vec<EntangledQuery> {
    assert_eq!(n % CHAIN, 0, "workload size must be a multiple of {CHAIN}");
    (0..n)
        .map(|i| {
            let next = if (i + 1) % CHAIN == 0 {
                n + i / CHAIN
            } else {
                i + 1
            };
            partner_query(i, &[next])
        })
        .collect()
}

/// The free query that closes chain `g`: its never-arriving partner.
fn keystone(n: usize, g: usize) -> EntangledQuery {
    partner_query(n + g, &[])
}

fn opts(snapshot_every: Option<u64>) -> DurabilityOptions {
    DurabilityOptions {
        snapshot_every,
        ..DurabilityOptions::default()
    }
}

fn sorted_names<'a>(queries: impl IntoIterator<Item = &'a EntangledQuery>) -> Vec<String> {
    let mut names: Vec<String> = queries.into_iter().map(|q| q.name().to_string()).collect();
    names.sort_unstable();
    names
}

fn bench_durability(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[512] } else { &[512, 2048] };
    let samples = if quick { 2 } else { 3 };

    let mut group = c.benchmark_group("durability");
    group.sample_size(samples);

    for &n in sizes {
        let db = pool_db(n + n / CHAIN + 1);
        let arrivals = open_chains(n);

        // Live submission with the WAL on (no snapshots).
        group.bench_with_input(BenchmarkId::new("live_wal", n), &arrivals, |b, arrivals| {
            b.iter(|| {
                let dir = TempDir::new("bench-live");
                let mut engine =
                    DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
                for q in arrivals.iter().cloned() {
                    engine.submit(q).unwrap();
                }
                assert_eq!(engine.pending().len(), n);
                engine.store_stats().records_appended
            });
        });

        // Live submission with periodic snapshots (epoch rotation).
        let every = (n / 8) as u64;
        group.bench_with_input(
            BenchmarkId::new("live_snapshotted", n),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    let dir = TempDir::new("bench-snap");
                    let mut engine =
                        DurableCoordinationEngine::open_with(&db, dir.path(), opts(Some(every)))
                            .unwrap();
                    for q in arrivals.iter().cloned() {
                        engine.submit(q).unwrap();
                    }
                    let stats = engine.store_stats();
                    assert!(stats.snapshots_taken >= 7, "too few rotations: {stats:?}");
                    stats.snapshots_taken
                });
            },
        );

        // Recovery replay of the full log (dir prepared outside the
        // timed loop).
        let replay_dir = TempDir::new("bench-replay");
        {
            let mut engine =
                DurableCoordinationEngine::open_with(&db, replay_dir.path(), opts(None)).unwrap();
            for q in arrivals.iter().cloned() {
                engine.submit(q).unwrap();
            }
        } // drop = crash (there is no clean shutdown)
        group.bench_with_input(BenchmarkId::new("replay", n), &replay_dir, |b, dir| {
            b.iter(|| {
                let engine =
                    DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
                assert_eq!(engine.recovery_report().records_replayed, n);
                assert_eq!(engine.pending().len(), n);
                engine.pending().len()
            });
        });

        // Sharded durable service: 4 submitter threads over disjoint
        // chains, one WAL stream per shard.
        group.bench_with_input(
            BenchmarkId::new("sharded_durable_4_threads", n),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    let dir = TempDir::new("bench-sharded");
                    let engine =
                        DurableSharedEngine::open_with(&db, dir.path(), 4, opts(None)).unwrap();
                    std::thread::scope(|s| {
                        for chunk in arrivals.chunks(n.div_ceil(4) / CHAIN * CHAIN) {
                            let engine = &engine;
                            s.spawn(move || {
                                for q in chunk.iter().cloned() {
                                    engine.submit(q).unwrap();
                                }
                            });
                        }
                    });
                    assert_eq!(engine.pending_count(), n);
                    engine.store_stats().records_appended
                });
            },
        );

        // ── Assert-while-measuring: the durability analysis ──────────
        //
        // 1. Live WAL run (timed), then a simulated crash.
        let dir = TempDir::new("durability-analysis");
        let mut reference = CoordinationEngine::new(&db); // uninterrupted twin
        let live_start = Instant::now();
        {
            let mut live =
                DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
            for q in arrivals.iter().cloned() {
                live.submit(q).unwrap();
            }
            assert_eq!(live.pending().len(), n);
        }
        let live_elapsed = live_start.elapsed();
        for q in arrivals.iter().cloned() {
            reference.submit(q).unwrap();
        }

        // 2. Recovery replay (timed) must be at least as fast: it does
        //    no component evaluation.
        let replay_start = Instant::now();
        let mut recovered =
            DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
        let replay_elapsed = replay_start.elapsed();
        assert_eq!(recovered.recovery_report().records_replayed, n);
        assert!(
            replay_elapsed <= live_elapsed,
            "at n = {n}: replay {replay_elapsed:?} slower than live submission {live_elapsed:?}"
        );

        // 3. The recovered engine matches the uninterrupted one: same
        //    pending set, same component structure, and the next
        //    coordination delivers identical answers.
        assert_eq!(
            sorted_names(recovered.pending()),
            sorted_names(reference.pending().iter().copied()),
            "recovered pending set diverged"
        );
        assert_eq!(recovered.component_count(), reference.component_count());
        recovered.validate_invariants();
        let a = recovered.submit(keystone(n, 0)).unwrap();
        let b = reference.submit(keystone(n, 0)).unwrap();
        assert!(a.coordinated() && b.coordinated());
        let mut a_sorted = a.answers.clone();
        let mut b_sorted = b.answers.clone();
        a_sorted.sort_by(|x, y| x.query.cmp(&y.query));
        b_sorted.sort_by(|x, y| x.query.cmp(&y.query));
        assert_eq!(a_sorted, b_sorted, "post-recovery answers diverged");
        assert_eq!(a.answers.len(), CHAIN + 1);

        // 4. Snapshot amortization: bounded replay tail, bounded live
        //    overhead.
        let snap_dir = TempDir::new("durability-analysis-snap");
        let snap_start = Instant::now();
        {
            let mut live =
                DurableCoordinationEngine::open_with(&db, snap_dir.path(), opts(Some(every)))
                    .unwrap();
            for q in arrivals.iter().cloned() {
                live.submit(q).unwrap();
            }
        }
        let snap_elapsed = snap_start.elapsed();
        let snap_recovered =
            DurableCoordinationEngine::open_with(&db, snap_dir.path(), opts(Some(every))).unwrap();
        let report = snap_recovered.recovery_report().clone();
        assert!(report.had_snapshot);
        assert!(
            report.records_replayed as u64 <= every,
            "replay tail {} exceeds the snapshot interval {every}",
            report.records_replayed
        );
        assert_eq!(report.snapshot_entries + report.records_replayed, n);
        // Amortization sanity bound, deliberately loose: both sides are
        // single-shot wall-clock measurements on a shared box (observed
        // ratio ~1.2–1.7×).
        assert!(
            snap_elapsed.as_secs_f64() <= 3.0 * live_elapsed.as_secs_f64().max(1e-6),
            "snapshotting tripled live cost: {snap_elapsed:?} vs {live_elapsed:?}"
        );

        let live_tp = n as f64 / live_elapsed.as_secs_f64();
        let replay_tp = n as f64 / replay_elapsed.as_secs_f64();
        println!(
            "durability/analysis/{n}: live {live_tp:.0} submits/s, replay {replay_tp:.0} \
             records/s ({:.1}× live), snapshot overhead {:.2}×, snapshot replay tail {} records",
            replay_tp / live_tp,
            snap_elapsed.as_secs_f64() / live_elapsed.as_secs_f64(),
            report.records_replayed,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_durability);
criterion_main!(benches);
