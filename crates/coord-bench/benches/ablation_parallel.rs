//! The parallelism the paper leaves as future work (Section 6.2): "our
//! algorithm naturally breaks into parallel processes, where each
//! possible value can be easily checked independently". This ablation
//! compares the sequential sweeps against their scoped-thread parallel
//! versions for *both* coordination algorithms:
//!
//! * the Consistent algorithm's per-value sweep (each option value is
//!   checked independently), and
//! * the SCC algorithm's condensation sweep (independent components of
//!   a reverse-topological wavefront are evaluated concurrently) —
//!   asserted equal to the sequential outcome while measuring.

use coord_core::consistent::ConsistentCoordinator;
use coord_core::scc::SccCoordinator;
use coord_gen::workloads::{fig7_instance, partner_query, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_sweep");
    group.sample_size(10);
    let (db, config, queries) = fig7_instance(50, 600);
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();

    group.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| {
            coordinator
                .run(&queries)
                .unwrap()
                .best
                .map(|s| s.members.len())
        });
    });
    for threads in [2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                coordinator
                    .run_parallel(&queries, threads)
                    .unwrap()
                    .best
                    .map(|s| s.members.len())
            });
        });
    }
    group.finish();
}

/// A forest of `chains` independent list-structured chains of length
/// `len`: within each chain query i requires query i+1, and the chains
/// share nothing. The condensation is `chains` disjoint paths, so every
/// reverse-topological wavefront holds `chains` independent components —
/// the shape the wavefront-parallel sweep exists for. (A single list is
/// the *worst* case: its condensation is one chain, waves of width 1.)
fn forest_queries(chains: usize, len: usize) -> Vec<coord_core::EntangledQuery> {
    (0..chains)
        .flat_map(|ch| {
            let base = ch * len;
            (0..len).map(move |i| {
                let partners: Vec<usize> = if i + 1 < len {
                    vec![base + i + 1]
                } else {
                    vec![]
                };
                partner_query(base + i, &partners)
            })
        })
        .collect()
}

fn bench_scc_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scc_parallel_sweep");
    group.sample_size(5);
    // 8 independent chains of 40: waves of width 8, with nontrivial
    // suffix-closure work per component.
    let db = pool_db(1_000);
    let queries = forest_queries(8, 40);
    let coordinator = SccCoordinator::new(&db);
    let sequential = coordinator.run(&queries).unwrap();

    group.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| {
            let out = coordinator.run(&queries).unwrap();
            assert_eq!(out.stats.db_queries, queries.len());
            out.found.len()
        });
    });
    for threads in [2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                let out = coordinator.run_parallel(&queries, threads).unwrap();
                // Assert-while-measuring: per-closure candidates and
                // stats must match the sequential sweep exactly.
                assert_eq!(out.found, sequential.found);
                assert_eq!(out.stats, sequential.stats);
                out.found.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep, bench_scc_parallel_sweep);
criterion_main!(benches);
