//! The parallelism the paper leaves as future work (Section 6.2): "our
//! algorithm naturally breaks into parallel processes, where each
//! possible value can be easily checked independently". This ablation
//! compares the sequential per-value sweep of the Consistent
//! Coordination Algorithm against the scoped-thread parallel sweep.

use coord_core::consistent::ConsistentCoordinator;
use coord_gen::workloads::fig7_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel_sweep");
    group.sample_size(10);
    let (db, config, queries) = fig7_instance(50, 600);
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();

    group.bench_function(BenchmarkId::new("threads", 1), |b| {
        b.iter(|| {
            coordinator
                .run(&queries)
                .unwrap()
                .best
                .map(|s| s.members.len())
        })
    });
    for threads in [2, 4, 8] {
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| {
                coordinator
                    .run_parallel(&queries, threads)
                    .unwrap()
                    .best
                    .map(|s| s.members.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep);
criterion_main!(benches);
