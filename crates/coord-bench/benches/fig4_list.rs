//! Figure 4: SCC Coordination Algorithm processing time on the list
//! structure — `n` queries where each coordinates with the next, over a
//! Slashdot-sized tuple pool. The paper reports linear growth in `n`
//! (this is the algorithm's worst case: one coordinating set per suffix,
//! hence the maximum number of database queries).

use coord_core::scc::SccCoordinator;
use coord_gen::social::SLASHDOT_ROWS;
use coord_gen::workloads::{fig4_queries, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig4(c: &mut Criterion) {
    let db = pool_db(SLASHDOT_ROWS);
    let mut group = c.benchmark_group("fig4_list");
    group.sample_size(20);
    for n in [10, 25, 50, 75, 100] {
        let queries = fig4_queries(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &queries, |b, queries| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(queries).unwrap();
                assert_eq!(out.best().unwrap().len(), n);
                out.stats.db_queries
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
