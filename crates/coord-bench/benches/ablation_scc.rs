//! Ablations for the SCC Coordination Algorithm's design choices
//! (Section 4 running-time analysis):
//!
//! * **components matter**: a unique cycle of `n` queries forms one SCC
//!   (one database query), while the non-unique list of `n` queries forms
//!   `n` SCCs (n database queries) — same query count, very different
//!   work.
//! * **preprocessing pays**: a workload whose suffix is doomed (an
//!   unmatchable postcondition deep in the chain) is cut before any
//!   database work.
//! * **algorithm vs exhaustive**: the SCC algorithm against brute force
//!   on the same (small) safe instances.
//! * **indexing matters** (the `analysis` section, asserted while
//!   measuring and gated in CI via `--quick`): candidate enumeration
//!   through the shared (relation, first-arg constant) index performs
//!   ≥ 10× fewer atom-unifiability tests than the all-pairs sweep at
//!   n = 100, and grows near-linearly from n = 20 to n = 100.

use coord_core::bruteforce;
use coord_core::scc::{preprocess, SccCoordinator};
use coord_core::ClosureCache;
use coord_gen::workloads::{fig4_queries, partner_query, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// A unique cycle: query i coordinates with query (i+1) mod n.
fn cycle_queries(n: usize) -> Vec<coord_core::EntangledQuery> {
    (0..n).map(|i| partner_query(i, &[(i + 1) % n])).collect()
}

fn bench_cycle_vs_list(c: &mut Criterion) {
    let db = pool_db(1000);
    let mut group = c.benchmark_group("ablation_cycle_vs_list");
    group.sample_size(if quick_mode() { 3 } else { 20 });
    for n in [20, 60, 100] {
        let list = fig4_queries(n);
        let cycle = cycle_queries(n);
        group.bench_with_input(BenchmarkId::new("list", n), &list, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.db_queries, n);
                out.stats.db_queries
            });
        });
        group.bench_with_input(BenchmarkId::new("cycle", n), &cycle, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.db_queries, 1);
                out.stats.db_queries
            });
        });
    }
    group.finish();

    // Assert-while-measuring: the indexed candidate enumeration must be
    // near-linear where the all-pairs sweep is quadratic. The all-pairs
    // baseline for one sweep of the list workload is posts × heads
    // = (n−1)·n unifiability tests; the indexed pipeline (safety +
    // preprocessing fixpoint + graph construction combined) must sit at
    // least 10× below it at n = 100, and grow ≤ 8× over the 5× size
    // step from n = 20 (quadratic growth would be 25×). Asserted in
    // `--quick` too, so the CI run gates superlinear regressions.
    let calls_at = |n: usize| {
        let pre = preprocess(&db, &fig4_queries(n)).unwrap();
        assert!(pre.removed.is_empty());
        pre.unify_calls
    };
    let (small, large) = (calls_at(20), calls_at(100));
    let all_pairs = (100u64 - 1) * 100;
    assert!(
        large * 10 <= all_pairs,
        "indexed enumeration did {large} unify calls at n = 100; \
         all-pairs baseline is {all_pairs} (< 10× saving)"
    );
    assert!(
        large <= 8 * small,
        "unify calls grew {small} → {large} (> 8×) over a 5× size step"
    );
    println!(
        "ablation_cycle_vs_list/analysis: unify calls {small} @ n=20 → {large} @ n=100 \
         ({:.1}× below the {all_pairs}-test all-pairs baseline)",
        all_pairs as f64 / large as f64,
    );

    // Assert-while-measuring, differential gate: on the list workload
    // closure i contains i + 1 queries, so from-scratch evaluation pays
    // Σ|closure| ≈ n²/2 grounding operations where delta joins against
    // memoized successors pay O(n·Δ) = O(n). Gate both the growth rate
    // (≤ 8× over the 5× step; quadratic would be 25×) and the absolute
    // gap to the from-scratch baseline (≥ 10× at n = 100). Asserted in
    // `--quick` too, so CI catches a regression to scratch evaluation.
    let ground_at = |n: usize, scratch: bool| {
        let coordinator = SccCoordinator::new(&db);
        let coordinator = if scratch {
            coordinator.with_from_scratch_evaluation()
        } else {
            coordinator
        };
        let out = coordinator.run(&fig4_queries(n)).unwrap();
        assert_eq!(out.found.len(), n);
        out.stats.ground_work
    };
    let (d_small, d_large) = (ground_at(20, false), ground_at(100, false));
    let scratch_large = ground_at(100, true);
    assert!(
        d_large <= 8 * d_small,
        "differential grounding work grew {d_small} → {d_large} (> 8×) over a 5× size step"
    );
    assert!(
        d_large * 10 <= scratch_large,
        "differential grounding work {d_large} at n = 100 not ≥ 10× below \
         the from-scratch baseline {scratch_large}"
    );
    println!(
        "ablation_cycle_vs_list/analysis: grounding work {d_small} @ n=20 → {d_large} @ n=100 \
         differential vs {scratch_large} from-scratch ({:.1}× saving)",
        scratch_large as f64 / d_large as f64,
    );

    // Assert-while-measuring, closure-cache gate: a cold run populates
    // the cross-run verdict cache, a warm run over the same queries
    // resolves every closure from it. The counters come straight from
    // `ClosureCache::stats()` (the same `MemoStats` the engines expose
    // through `memo_stats()`), so the `--quick` CI log records the
    // steady-state hit rate alongside the other ablation figures.
    let cache = Arc::new(ClosureCache::with_capacity(4096));
    let warm_queries = fig4_queries(100);
    for _ in 0..2 {
        let out = SccCoordinator::new(&db)
            .with_closure_cache(Arc::clone(&cache))
            .run(&warm_queries)
            .unwrap();
        assert_eq!(out.best().unwrap().len(), 100);
    }
    let memo = cache.stats();
    assert!(
        memo.hits > 0,
        "warm run must resolve closures from the cache"
    );
    assert_eq!(
        memo.evictions, 0,
        "a 4096-entry cache must not evict on a 100-closure workload"
    );
    println!(
        "ablation_cycle_vs_list/analysis: closure cache {} hits / {} misses / {} evictions, \
         {} entries ({:.1}% warm hit rate)",
        memo.hits,
        memo.misses,
        memo.evictions,
        memo.entries,
        100.0 * memo.hits as f64 / (memo.hits + memo.misses) as f64,
    );
}

fn bench_preprocessing_cut(c: &mut Criterion) {
    let db = pool_db(1000);
    let mut group = c.benchmark_group("ablation_preprocessing");
    group.sample_size(if quick_mode() { 3 } else { 20 });
    for n in [20, 60, 100] {
        // A list whose head query demands a partner nobody provides: the
        // whole prefix is removed by preprocessing, leaving only suffix
        // singleton coordination.
        let mut doomed = fig4_queries(n);
        doomed[0] = partner_query(0, &[n + 7]); // nonexistent partner
        group.bench_with_input(BenchmarkId::new("doomed_head", n), &doomed, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.removed, 1);
                out.stats.db_queries
            });
        });
    }
    group.finish();
}

fn bench_scc_vs_bruteforce(c: &mut Criterion) {
    let db = pool_db(100);
    let mut group = c.benchmark_group("ablation_scc_vs_bruteforce");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    for n in [6, 10, 14] {
        let queries = fig4_queries(n);
        group.bench_with_input(BenchmarkId::new("scc", n), &queries, |b, qs| {
            b.iter(|| {
                SccCoordinator::new(&db)
                    .run(qs)
                    .unwrap()
                    .best()
                    .map(coord_core::FoundSet::len)
            });
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &queries, |b, qs| {
            b.iter(|| {
                bruteforce::max_coordinating_set(&db, qs)
                    .unwrap()
                    .best
                    .map(|f| f.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cycle_vs_list,
    bench_preprocessing_cut,
    bench_scc_vs_bruteforce
);
criterion_main!(benches);
