//! Ablations for the SCC Coordination Algorithm's design choices
//! (Section 4 running-time analysis):
//!
//! * **components matter**: a unique cycle of `n` queries forms one SCC
//!   (one database query), while the non-unique list of `n` queries forms
//!   `n` SCCs (n database queries) — same query count, very different
//!   work.
//! * **preprocessing pays**: a workload whose suffix is doomed (an
//!   unmatchable postcondition deep in the chain) is cut before any
//!   database work.
//! * **algorithm vs exhaustive**: the SCC algorithm against brute force
//!   on the same (small) safe instances.

use coord_core::bruteforce;
use coord_core::scc::SccCoordinator;
use coord_gen::workloads::{fig4_queries, partner_query, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A unique cycle: query i coordinates with query (i+1) mod n.
fn cycle_queries(n: usize) -> Vec<coord_core::EntangledQuery> {
    (0..n).map(|i| partner_query(i, &[(i + 1) % n])).collect()
}

fn bench_cycle_vs_list(c: &mut Criterion) {
    let db = pool_db(1000);
    let mut group = c.benchmark_group("ablation_cycle_vs_list");
    group.sample_size(20);
    for n in [20, 60, 100] {
        let list = fig4_queries(n);
        let cycle = cycle_queries(n);
        group.bench_with_input(BenchmarkId::new("list", n), &list, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.db_queries, n);
                out.stats.db_queries
            })
        });
        group.bench_with_input(BenchmarkId::new("cycle", n), &cycle, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.db_queries, 1);
                out.stats.db_queries
            })
        });
    }
    group.finish();
}

fn bench_preprocessing_cut(c: &mut Criterion) {
    let db = pool_db(1000);
    let mut group = c.benchmark_group("ablation_preprocessing");
    group.sample_size(20);
    for n in [20, 60, 100] {
        // A list whose head query demands a partner nobody provides: the
        // whole prefix is removed by preprocessing, leaving only suffix
        // singleton coordination.
        let mut doomed = fig4_queries(n);
        doomed[0] = partner_query(0, &[n + 7]); // nonexistent partner
        group.bench_with_input(BenchmarkId::new("doomed_head", n), &doomed, |b, qs| {
            b.iter(|| {
                let out = SccCoordinator::new(&db).run(qs).unwrap();
                assert_eq!(out.stats.removed, 1);
                out.stats.db_queries
            })
        });
    }
    group.finish();
}

fn bench_scc_vs_bruteforce(c: &mut Criterion) {
    let db = pool_db(100);
    let mut group = c.benchmark_group("ablation_scc_vs_bruteforce");
    group.sample_size(10);
    for n in [6, 10, 14] {
        let queries = fig4_queries(n);
        group.bench_with_input(BenchmarkId::new("scc", n), &queries, |b, qs| {
            b.iter(|| {
                SccCoordinator::new(&db)
                    .run(qs)
                    .unwrap()
                    .best()
                    .map(|f| f.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", n), &queries, |b, qs| {
            b.iter(|| {
                bruteforce::max_coordinating_set(&db, qs)
                    .unwrap()
                    .best
                    .map(|f| f.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cycle_vs_list,
    bench_preprocessing_cut,
    bench_scc_vs_bruteforce
);
criterion_main!(benches);
