//! Figure 7: Consistent Coordination Algorithm processing time as a
//! function of the number of possible coordination-attribute values.
//! 50 unconstrained queries, a complete friendship graph, and a flights
//! table of 100–1000 rows with all-distinct (destination, day) pairs —
//! the worst case where no value ever prunes anything. The paper reports
//! linear growth in the option count.

use coord_core::consistent::ConsistentCoordinator;
use coord_gen::workloads::fig7_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_values");
    group.sample_size(10);
    for rows in [100, 250, 500, 750, 1000] {
        let (db, config, queries) = fig7_instance(50, rows);
        let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &queries, |b, queries| {
            b.iter(|| {
                let out = coordinator.run(queries).unwrap();
                assert_eq!(out.stats.values_considered, rows);
                out.best.map(|s| s.members.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
