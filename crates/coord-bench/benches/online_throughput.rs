//! Online engine throughput: the incremental `coord-engine` path against
//! the pre-incremental full-rebuild baseline, on Barabási–Albert
//! workloads arriving online.
//!
//! Workload: `n` queries in groups of 16; each group's coordination
//! structure is a BA(16, 2) digraph whose seed nodes additionally point
//! at a designated *keystone* member, so every member's closure
//! transitively requires the keystone. Phase 1 submits all non-keystone
//! queries (interleaved across groups): nothing can coordinate, pending
//! grows to `15n/16`. Phase 2 submits the keystones: each group
//! coordinates and retires within its own component.
//!
//! This is the regime the incremental engine exists for — a large steady
//! pending set whose arrivals each touch a tiny component. The bench
//! *asserts the per-submit query-count analysis while it measures*:
//!
//! * incremental per-submit evaluated queries stay bounded by the group
//!   size (sub-linear — in fact O(1) — in the pending-set size), while
//!   the rebuild baseline's examined-queries counter grows quadratically;
//! * at n = 1024 pending-scale, the incremental path does at least 8×
//!   less evaluation work than the rebuild path;
//! * the sharded engine with 4 submitter threads over disjoint groups
//!   delivers the same coordinations.

use coord_core::engine::{CoordinationEngine, RebuildEngine, SharedEngine};
use coord_core::EntangledQuery;
use coord_gen::networks::barabasi_albert;
use coord_gen::workloads::{partner_query, pool_db};
use coord_graph::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

const GROUP: usize = 16;

/// One group's queries, in arrival order: members 0..GROUP-1 with the
/// keystone (the highest-index member) last. User indices are offset so
/// groups are disjoint.
fn group_queries(group: usize, rng: &mut impl Rng) -> Vec<EntangledQuery> {
    let graph = barabasi_albert(GROUP, 2, rng);
    let keystone = GROUP - 1;
    let offset = group * GROUP;
    (0..GROUP)
        .map(|i| {
            let mut partners: Vec<usize> = graph
                .successors(NodeId(i))
                .map(coord_graph::NodeId::index)
                .collect();
            if partners.is_empty() && i != keystone {
                // Seed nodes point at the keystone so the whole group
                // waits for it.
                partners.push(keystone);
            }
            partners.sort_unstable();
            partners.dedup();
            let partners: Vec<usize> = partners.iter().map(|&p| p + offset).collect();
            partner_query(i + offset, &partners)
        })
        .collect()
}

/// The full workload: per-group query lists, keystones last within each.
fn workload(n: usize) -> Vec<Vec<EntangledQuery>> {
    assert_eq!(n % GROUP, 0, "workload size must be a multiple of {GROUP}");
    let mut rng = StdRng::seed_from_u64(42);
    (0..n / GROUP).map(|g| group_queries(g, &mut rng)).collect()
}

/// Arrival order: phase 1 interleaves the non-keystones of all groups,
/// phase 2 releases the keystones.
fn arrival_order(groups: &[Vec<EntangledQuery>]) -> Vec<EntangledQuery> {
    let mut order = Vec::new();
    for i in 0..GROUP - 1 {
        for g in groups {
            order.push(g[i].clone());
        }
    }
    for g in groups {
        order.push(g[GROUP - 1].clone());
    }
    order
}

fn bench_online_throughput(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick { &[256] } else { &[256, 1024] };
    let samples = if quick { 2 } else { 3 };

    let mut group = c.benchmark_group("online_throughput");
    group.sample_size(samples);

    for &n in sizes {
        let db = pool_db(n.max(256));
        let groups = workload(n);
        let arrivals = arrival_order(&groups);
        let keystones = groups.len();

        group.bench_with_input(BenchmarkId::new("rebuild", n), &arrivals, |b, arrivals| {
            b.iter(|| {
                let mut engine = RebuildEngine::new(&db);
                let mut coordinated = 0usize;
                for q in arrivals.iter().cloned() {
                    if engine.submit(q).unwrap().coordinated() {
                        coordinated += 1;
                    }
                }
                // Phase 1 cannot coordinate; every keystone must.
                assert_eq!(coordinated, keystones);
                // Full rebuild examines Σ pending — quadratic in the
                // steady pending size.
                let examined = engine.queries_examined();
                assert!(
                    examined as usize > n * n / 8,
                    "rebuild examined {examined} ≤ n²/8"
                );
                examined
            });
        });

        group.bench_with_input(
            BenchmarkId::new("incremental", n),
            &arrivals,
            |b, arrivals| {
                b.iter(|| {
                    let mut engine = CoordinationEngine::new(&db);
                    let mut coordinated = 0usize;
                    for q in arrivals.iter().cloned() {
                        if engine.submit(q).unwrap().coordinated() {
                            coordinated += 1;
                        }
                    }
                    assert_eq!(coordinated, keystones);
                    let snap = engine.metrics();
                    // Per-submit work is bounded by the component (≤ one
                    // group), independent of the pending-set size.
                    assert!(
                        snap.evaluated_per_submit() <= (GROUP + 1) as f64,
                        "per-submit work {} exceeds the group bound",
                        snap.evaluated_per_submit()
                    );
                    // Candidate pairing through the index stays far below
                    // the all-pairs regime.
                    assert!(
                        snap.pairings_checked < (n * n / 8) as u64,
                        "pairings {} not sub-quadratic",
                        snap.pairings_checked
                    );
                    snap.queries_evaluated
                });
            },
        );

        group.bench_with_input(
            BenchmarkId::new("sharded_4_threads", n),
            &groups,
            |b, groups| {
                b.iter(|| {
                    let engine = SharedEngine::with_shards(&db, 4);
                    std::thread::scope(|s| {
                        for chunk in groups.chunks(groups.len().div_ceil(4)) {
                            let engine = &engine;
                            s.spawn(move || {
                                // Each thread owns disjoint groups: phase
                                // 1 arrives in cross-group *batches* (one
                                // routing acquisition per wave), then the
                                // keystones release each group.
                                for i in 0..GROUP - 1 {
                                    let wave: Vec<_> = chunk.iter().map(|g| g[i].clone()).collect();
                                    for r in engine.submit_batch(wave) {
                                        assert!(!r.unwrap().coordinated());
                                    }
                                }
                                for g in chunk {
                                    let r = engine.submit(g[GROUP - 1].clone()).unwrap();
                                    assert!(r.coordinated());
                                }
                            });
                        }
                    });
                    assert!(engine.metrics().batches >= (GROUP - 1) as u64);
                    engine.delivered()
                });
            },
        );

        // Assert-while-measuring, cross-engine: the incremental path must
        // do at least 8× less evaluation work than the rebuild path.
        // Asserted at *every* measured size (observed: 14.8× at n = 256,
        // 58.8× at n = 1024) so the CI `--quick` run gates it too.
        let mut reb = RebuildEngine::new(&db);
        let mut inc = CoordinationEngine::new(&db);
        for q in arrivals.iter().cloned() {
            reb.submit(q.clone()).unwrap();
            inc.submit(q).unwrap();
        }
        let inc_work = inc.metrics().queries_evaluated;
        let reb_work = reb.queries_examined();
        assert!(
            inc_work * 8 < reb_work,
            "at n = {n}: incremental {inc_work} vs rebuild {reb_work} (< 8× saving)"
        );
        println!(
            "online_throughput/analysis/{n}: incremental evaluated {inc_work} vs rebuild {reb_work} \
             ({:.1}× less), {:.2} queries/submit",
            reb_work as f64 / inc_work as f64,
            inc.metrics().evaluated_per_submit(),
        );

        // Assert-while-measuring, observability overhead gate: the same
        // single-threaded workload through the sharded engine with an
        // enabled registry (histograms, plus the full request-scoped
        // tracing path — a trace-id ticket per submit, ctx-stamped ring
        // events, and an armed slow-query flight recorder whose
        // threshold check runs on every root span) vs a disabled one
        // (one branch per instrument, no clock reads). Best-of-5 wall
        // clock on each side to shed scheduler noise on the 1-CPU
        // runner; the enabled run must stay within 5% (plus a 2ms
        // absolute floor so a sub-millisecond quick workload cannot
        // fail on timer granularity alone).
        let run_once = |obs: coord_obs::Registry| -> std::time::Duration {
            // 1s threshold: the per-root check is paid, captures stay
            // rare — the cost under gate is the bookkeeping, not copies.
            obs.set_slow_query_log(1_000_000_000, 32);
            let engine = SharedEngine::with_obs(
                &db,
                4,
                coord_core::engine::Placement::default(),
                coord_core::engine::RebalanceConfig::default(),
                obs,
            );
            let start = std::time::Instant::now();
            let mut coordinated = 0usize;
            for q in arrivals.iter().cloned() {
                if engine.submit(q).unwrap().coordinated() {
                    coordinated += 1;
                }
            }
            assert_eq!(coordinated, keystones);
            start.elapsed()
        };
        let best_of = |disabled: bool| -> std::time::Duration {
            (0..5)
                .map(|_| {
                    run_once(if disabled {
                        coord_obs::Registry::disabled()
                    } else {
                        coord_obs::Registry::new()
                    })
                })
                .min()
                .unwrap()
        };
        let off = best_of(true);
        let on = best_of(false);
        let budget = off.mul_f64(1.05) + std::time::Duration::from_millis(2);
        assert!(
            on <= budget,
            "at n = {n}: enabled observability took {on:?} vs {off:?} disabled \
             (> 5% + 2ms overhead)"
        );
        println!(
            "online_throughput/analysis/{n}: observability overhead {on:?} enabled \
             vs {off:?} disabled ({:+.1}%)",
            100.0 * (on.as_secs_f64() / off.as_secs_f64() - 1.0),
        );

        // The gated run is the *traced* configuration: verify (untimed)
        // that an enabled registry really does put a nonzero trace id
        // on every submit span — the gate must not pass by silently
        // measuring id-less tracing.
        let check = coord_obs::Registry::new();
        run_once(check.clone());
        let (events, _) = check.tracer().events();
        let submits: Vec<_> = events.iter().filter(|e| e.kind == "submit").collect();
        assert!(!submits.is_empty(), "traced run recorded no submit spans");
        assert!(
            submits.iter().all(|e| e.trace_id != 0),
            "a submit span carried trace id 0 in the enabled run"
        );
    }
    group.finish();
}

criterion_group!(benches, bench_online_throughput);
criterion_main!(benches);
