//! Storage backends: flat per-submit coordination cost under composite
//! indexes (the PR 8 tentpole gate).
//!
//! Workload: the Figure 4 list chain over a Slashdot-scale activity
//! table `A(id, topic, day)` whose topic pool and day range both have
//! ≈√N values — each query body pins a (topic, day) pair, so a
//! single-column index bucket holds ≈√N rows while the composite
//! (topic, day) bucket holds exactly one. Cost is measured in database
//! **probe work** (rows scanned + ground membership probes — the
//! `QueryStats` counters), not wall clock: the CI runner has one CPU
//! and counters are deterministic.
//!
//! The bench *asserts the storage analysis while it measures*:
//!
//! * **flat cost**: with composite indexes active (advised by
//!   `preprocess`, the same wiring the batch coordinator uses),
//!   per-submit probe work grows ≤ 2× while the table grows 100×
//!   (10⁴ → 10⁶ rows);
//! * **the contrast is real**: the plain row store's per-submit work
//!   grows ≥ 3× over the same span (≈√100 = 10× expected);
//! * **results stay identical**: every backend's submit-by-submit
//!   answers are byte-identical.

use coord_core::engine::{CoordinationEngine, QueryAnswer};
use coord_core::scc::preprocess;
use coord_core::EntangledQuery;
use coord_db::{BackendKind, Database, Symbol};
use coord_gen::workloads::{activity_chain_queries, activity_db, ACTIVITY_TABLE};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Chain length: 60 queries, matching the paper's Figure 4 midpoint.
const CHAIN: usize = 60;

/// Table sizes for the flat-cost gate: 100× growth up to 10⁶ rows.
const SMALL: usize = 10_000;
const LARGE: usize = 1_000_000;

/// Drive the activity chain through the online engine and return
/// (per-submit probe work, submit-by-submit answer transcript).
fn drive(db: &Database, queries: &[EntangledQuery]) -> (f64, Vec<Vec<QueryAnswer>>) {
    // Advise composite patterns exactly as batch coordination does; the
    // row and columnar backends ignore the hint.
    preprocess(db, queries).expect("workload preprocesses");
    db.stats().reset();
    let mut engine = CoordinationEngine::new(db);
    let mut transcript = Vec::new();
    for q in queries {
        transcript.push(engine.submit(q.clone()).unwrap().answers);
    }
    assert_eq!(engine.pending().len(), 0, "chain must fully coordinate");
    let per_submit = db.stats().probe_work() as f64 / queries.len() as f64;
    (per_submit, transcript)
}

fn bench_storage(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[SMALL, LARGE]
    } else {
        &[SMALL, 100_000, LARGE]
    };

    // ── Criterion timing: chain run per backend at the small size ────
    let mut group = c.benchmark_group("storage");
    group.sample_size(if quick { 2 } else { 3 });
    for kind in BackendKind::ALL {
        let db = activity_db(SMALL, kind);
        let queries = activity_chain_queries(CHAIN, SMALL);
        group.bench_with_input(
            BenchmarkId::new(kind.name(), SMALL),
            &queries,
            |b, queries| b.iter(|| drive(&db, queries)),
        );
    }
    group.finish();

    // ── Assert-while-measuring: the flat-cost gate ───────────────────
    //
    // One backend in memory at a time: a 10⁶-row table with per-column
    // hash indexes is the dominant allocation of the run.
    let mut work: Vec<(BackendKind, Vec<f64>)> = Vec::new();
    let mut transcripts: Option<Vec<Vec<Vec<QueryAnswer>>>> = None;
    for kind in BackendKind::ALL {
        let mut per_size = Vec::new();
        let mut per_size_transcripts = Vec::new();
        for &rows in sizes {
            let db = activity_db(rows, kind);
            let queries = activity_chain_queries(CHAIN, rows);
            let (per_submit, transcript) = drive(&db, &queries);
            if kind == BackendKind::Composite {
                let patterns = db
                    .table(&Symbol::new(ACTIVITY_TABLE))
                    .unwrap()
                    .storage()
                    .composite_patterns();
                assert!(
                    patterns.contains(&vec![1, 2]),
                    "preprocess must advise the (topic, day) composite index, got {patterns:?}"
                );
            }
            per_size.push(per_submit);
            per_size_transcripts.push(transcript);
        }
        // Answers are backend-independent, submit by submit.
        match &transcripts {
            None => transcripts = Some(per_size_transcripts),
            Some(reference) => assert_eq!(
                reference,
                &per_size_transcripts,
                "{} answers diverged from the row store",
                kind.name()
            ),
        }
        work.push((kind, per_size));
    }

    for (kind, per_size) in &work {
        let (first, last) = (per_size[0], per_size[per_size.len() - 1]);
        let growth = last / first.max(1.0);
        println!(
            "storage/analysis/{}: per-submit probe work {:?} over table sizes {:?} \
             (growth {growth:.2}× across 100× rows)",
            kind.name(),
            per_size.iter().map(|w| *w as u64).collect::<Vec<_>>(),
            sizes,
        );
        match kind {
            BackendKind::Composite => assert!(
                growth <= 2.0,
                "composite per-submit probe work grew {growth:.2}× (> 2×) \
                 across a 100× table: {first:.0} → {last:.0}"
            ),
            BackendKind::Row => assert!(
                growth >= 3.0,
                "row-store per-submit probe work grew only {growth:.2}×; \
                 the workload no longer stresses single-column buckets"
            ),
            BackendKind::Columnar => {}
        }
    }
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
