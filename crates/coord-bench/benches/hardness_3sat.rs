//! The Section 3 hardness separation, measured: deciding the same random
//! 3SAT instance via (a) DPLL on the formula and (b) exhaustive
//! entangled-query search on the Theorem 1 reduction. The brute-force
//! side grows exponentially with the variable count while DPLL stays
//! trivial on these sizes — the practical face of Theorem 1.

use coord_core::bruteforce;
use coord_sat::{dpll_solve, random_3sat, reduction1};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

fn bench_hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness_3sat");
    group.sample_size(10);
    for n_vars in [2, 3, 4] {
        let formulas: Vec<_> = (0..4u64)
            .map(|seed| random_3sat(n_vars, n_vars + 1, &mut StdRng::seed_from_u64(seed)))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("dpll", n_vars),
            &formulas,
            |b, formulas| b.iter(|| formulas.iter().filter(|f| dpll_solve(f).is_some()).count()),
        );

        let reductions: Vec<_> = formulas.iter().map(reduction1::reduce).collect();
        group.bench_with_input(
            BenchmarkId::new("entangled_bruteforce", n_vars),
            &reductions,
            |b, reductions| {
                b.iter(|| {
                    reductions
                        .iter()
                        .filter(|r| {
                            bruteforce::any_coordinating_set(&r.db, &r.queries)
                                .unwrap()
                                .best
                                .is_some()
                        })
                        .count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hardness);
criterion_main!(benches);
