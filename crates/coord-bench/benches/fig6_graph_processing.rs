//! Figure 6: graph construction and preprocessing time for large
//! scale-free coordination graphs (100–1000 queries, 10 random graphs
//! per size). The paper reports that "even for very large coordination
//! graphs, the graph processing time is negligible, and grows very
//! slowly" — this bench isolates exactly that phase (safety check,
//! pruning, coordination graph, Tarjan SCC, condensation; no database
//! grounding).

use coord_core::scc::preprocess;
use coord_gen::workloads::{fig5_queries, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

fn bench_fig6(c: &mut Criterion) {
    let db = pool_db(1000);
    let mut group = c.benchmark_group("fig6_graph_processing");
    group.sample_size(10);
    for n in [100, 250, 500, 750, 1000] {
        let workloads: Vec<_> = (0..10u64)
            .map(|seed| fig5_queries(n, 2, &mut StdRng::seed_from_u64(seed)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &workloads, |b, ws| {
            b.iter(|| {
                let mut comps = 0usize;
                for queries in ws {
                    let pre = preprocess(&db, queries).unwrap();
                    comps += pre.cond.len();
                }
                comps
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
