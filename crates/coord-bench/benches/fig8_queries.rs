//! Figure 8: Consistent Coordination Algorithm processing time as a
//! function of the number of queries. Flights table fixed at 100 tuples
//! (each a distinct destination/day combination), complete friendship
//! graph, 10–100 unconstrained queries. The paper reports linear growth
//! in the query count.

use coord_core::consistent::ConsistentCoordinator;
use coord_gen::workloads::fig8_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_queries");
    group.sample_size(10);
    for n in [10, 25, 50, 75, 100] {
        let (db, config, queries) = fig8_instance(n, 100);
        let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &queries, |b, queries| {
            b.iter(|| {
                let out = coordinator.run(queries).unwrap();
                assert_eq!(out.best.as_ref().map(|s| s.members.len()), Some(n));
                out.stats.db_queries
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
