//! The semantics of coordination: Definition 1 and its verifier.
//!
//! A non-empty subset `S` of queries is a **coordinating set** under an
//! assignment `h` iff
//!
//! 1. every variable occurring in `S` is assigned a value by `h`,
//! 2. the grounded version of every body atom appears in the instance,
//! 3. the set of grounded postcondition atoms of `S` is a subset of the
//!    set of grounded head atoms of `S`.
//!
//! [`check_coordinating_set`] verifies the definition directly against the
//! database; every algorithm's output is validated through it in tests,
//! making it the ground truth for the whole system.

use crate::instance::QuerySet;
use crate::query::QueryId;
use coord_db::{Atom, Database, Symbol, Term, Value, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A total assignment of database values to global variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Grounding {
    map: HashMap<Var, Value>,
}

impl Grounding {
    /// An empty grounding.
    pub fn new() -> Self {
        Grounding::default()
    }

    /// The value assigned to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Value> {
        self.map.get(&v)
    }

    /// Assign `v := value`.
    pub fn set(&mut self, v: Var, value: Value) {
        self.map.insert(v, value);
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over assignments.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Value)> {
        self.map.iter().map(|(v, val)| (*v, val))
    }

    /// Ground an atom: substitute every variable. Returns `None` if some
    /// variable is unassigned.
    pub fn ground_atom(&self, atom: &Atom) -> Option<GroundAtom> {
        let mut values = Vec::with_capacity(atom.arity());
        for t in &atom.terms {
            match t {
                Term::Const(c) => values.push(c.clone()),
                Term::Var(v) => values.push(self.map.get(v)?.clone()),
            }
        }
        Some(GroundAtom {
            relation: atom.relation.clone(),
            values,
        })
    }
}

impl FromIterator<(Var, Value)> for Grounding {
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        Grounding {
            map: iter.into_iter().collect(),
        }
    }
}

/// A fully grounded atom `R(v_1, ..., v_k)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GroundAtom {
    pub relation: Symbol,
    pub values: Vec<Value>,
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Why a candidate (subset, assignment) fails Definition 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Coordinating sets must be non-empty.
    EmptySet,
    /// Condition (1): a variable of a member query is unassigned.
    UnassignedVar { query: QueryId, var: Var },
    /// Condition (2): a grounded body atom is not in the instance.
    BodyAtomNotInInstance { query: QueryId, atom: GroundAtom },
    /// Condition (3): a grounded postcondition has no matching grounded
    /// head within the set.
    PostconditionUnmatched { query: QueryId, atom: GroundAtom },
    /// A database error occurred while checking membership.
    Db(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EmptySet => write!(f, "coordinating sets must be non-empty"),
            Violation::UnassignedVar { query, var } => {
                write!(f, "variable {var} of query {query:?} is unassigned")
            }
            Violation::BodyAtomNotInInstance { query, atom } => {
                write!(
                    f,
                    "body atom {atom} of query {query:?} is not in the instance"
                )
            }
            Violation::PostconditionUnmatched { query, atom } => write!(
                f,
                "postcondition {atom} of query {query:?} is not produced by any head in the set"
            ),
            Violation::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

/// Verify Definition 1 for `members ⊆ Q` under grounding `h`.
///
/// Returns `Ok(())` iff `members` is a coordinating set witnessed by `h`.
pub fn check_coordinating_set(
    db: &Database,
    qs: &QuerySet,
    members: &[QueryId],
    h: &Grounding,
) -> Result<(), Violation> {
    if members.is_empty() {
        return Err(Violation::EmptySet);
    }

    // Condition (1): all variables assigned.
    for &m in members {
        for v in qs.vars_of(m) {
            if h.get(v).is_none() {
                return Err(Violation::UnassignedVar { query: m, var: v });
            }
        }
    }

    // Condition (2): grounded bodies are in the instance.
    for &m in members {
        for atom in qs.body(m) {
            let ga = h.ground_atom(&atom).expect("checked in condition (1)");
            let present = db
                .contains(&ga.relation, &ga.values)
                .map_err(|e| Violation::Db(e.to_string()))?;
            if !present {
                return Err(Violation::BodyAtomNotInInstance { query: m, atom: ga });
            }
        }
    }

    // Condition (3): grounded postconditions ⊆ grounded heads.
    let mut heads: HashSet<GroundAtom> = HashSet::new();
    for &m in members {
        for atom in qs.heads(m) {
            heads.insert(h.ground_atom(&atom).expect("checked in condition (1)"));
        }
    }
    for &m in members {
        for atom in qs.postconditions(m) {
            let ga = h.ground_atom(&atom).expect("checked in condition (1)");
            if !heads.contains(&ga) {
                return Err(Violation::PostconditionUnmatched { query: m, atom: ga });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn zurich_db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db
    }

    fn gwyneth_chris() -> QuerySet {
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        QuerySet::new(vec![q1, q2])
    }

    #[test]
    fn paper_example_verifies() {
        // h(x) = h(y) = 101 makes {q1, q2} a coordinating set.
        let db = zurich_db();
        let qs = gwyneth_chris();
        let h: Grounding = [(Var(0), Value::int(101)), (Var(1), Value::int(101))]
            .into_iter()
            .collect();
        check_coordinating_set(&db, &qs, &[QueryId(0), QueryId(1)], &h).unwrap();
    }

    #[test]
    fn q2_alone_is_a_coordinating_set() {
        // q2 has no postconditions: {q2} coordinates by itself.
        let db = zurich_db();
        let qs = gwyneth_chris();
        let h: Grounding = [(Var(1), Value::int(101))].into_iter().collect();
        check_coordinating_set(&db, &qs, &[QueryId(1)], &h).unwrap();
    }

    #[test]
    fn q1_alone_fails_condition_3() {
        // q1's postcondition R(Chris, 101) has no head producing it.
        let db = zurich_db();
        let qs = gwyneth_chris();
        let h: Grounding = [(Var(0), Value::int(101))].into_iter().collect();
        let err = check_coordinating_set(&db, &qs, &[QueryId(0)], &h).unwrap_err();
        assert!(matches!(err, Violation::PostconditionUnmatched { .. }));
    }

    #[test]
    fn mismatched_values_fail_condition_3() {
        // Different flights for Gwyneth and Chris do not coordinate.
        let mut db = zurich_db();
        db.insert("Flights", vec![Value::int(102), Value::str("Zurich")])
            .unwrap();
        let qs = gwyneth_chris();
        let h: Grounding = [(Var(0), Value::int(101)), (Var(1), Value::int(102))]
            .into_iter()
            .collect();
        let err = check_coordinating_set(&db, &qs, &[QueryId(0), QueryId(1)], &h).unwrap_err();
        assert!(matches!(err, Violation::PostconditionUnmatched { .. }));
    }

    #[test]
    fn nonexistent_flight_fails_condition_2() {
        let db = zurich_db();
        let qs = gwyneth_chris();
        let h: Grounding = [(Var(0), Value::int(999)), (Var(1), Value::int(999))]
            .into_iter()
            .collect();
        let err = check_coordinating_set(&db, &qs, &[QueryId(0), QueryId(1)], &h).unwrap_err();
        assert!(matches!(err, Violation::BodyAtomNotInInstance { .. }));
    }

    #[test]
    fn unassigned_var_fails_condition_1() {
        let db = zurich_db();
        let qs = gwyneth_chris();
        let h = Grounding::new();
        let err = check_coordinating_set(&db, &qs, &[QueryId(1)], &h).unwrap_err();
        assert!(matches!(err, Violation::UnassignedVar { .. }));
    }

    #[test]
    fn empty_set_rejected() {
        let db = zurich_db();
        let qs = gwyneth_chris();
        let err = check_coordinating_set(&db, &qs, &[], &Grounding::new()).unwrap_err();
        assert_eq!(err, Violation::EmptySet);
    }

    #[test]
    fn ground_atom_requires_all_vars() {
        let h = Grounding::new();
        let atom = Atom::new("R", vec![Term::var(0)]);
        assert!(h.ground_atom(&atom).is_none());
        let c = Atom::new("R", vec![Term::constant(1i64)]);
        assert_eq!(
            h.ground_atom(&c).unwrap(),
            GroundAtom {
                relation: "R".into(),
                values: vec![Value::int(1)]
            }
        );
    }
}
