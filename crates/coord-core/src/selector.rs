//! Selection criteria among discovered coordinating sets.
//!
//! The paper (Section 4) notes that when several coordinating sets exist,
//! applications may prefer different ones: the maximum-size set, a set
//! containing a VIP client's query, or a set maximizing some weight (e.g.
//! number of gold-status passengers). These are pluggable here.

use crate::outcome::FoundSet;
use crate::query::QueryId;
use std::collections::HashMap;

/// A criterion choosing among candidate coordinating sets.
pub trait Selector {
    /// Index of the preferred candidate, or `None` when `candidates` is
    /// empty.
    fn choose(&self, candidates: &[FoundSet]) -> Option<usize>;
}

/// The paper's default: pick a maximum-size coordinating set (ties broken
/// by first occurrence, i.e. reverse topological discovery order).
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxSize;

impl Selector for MaxSize {
    fn choose(&self, candidates: &[FoundSet]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }
}

/// Prefer sets containing a VIP query; among those (or among all sets if
/// none contains the VIP), pick the largest.
#[derive(Clone, Copy, Debug)]
pub struct PreferQuery {
    pub vip: QueryId,
}

impl Selector for PreferQuery {
    fn choose(&self, candidates: &[FoundSet]) -> Option<usize> {
        let key = |f: &FoundSet| (f.contains(self.vip), f.len());
        candidates
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| key(a).cmp(&key(b)).then(ib.cmp(ia)))
            .map(|(i, _)| i)
    }
}

/// Maximize the total weight of member queries (e.g. gold-status
/// passengers). Queries without a weight count as zero.
#[derive(Clone, Debug, Default)]
pub struct Weighted {
    pub weights: HashMap<QueryId, i64>,
}

impl Weighted {
    /// Build from (query, weight) pairs.
    pub fn new(weights: impl IntoIterator<Item = (QueryId, i64)>) -> Self {
        Weighted {
            weights: weights.into_iter().collect(),
        }
    }

    fn weight_of(&self, f: &FoundSet) -> i64 {
        f.queries
            .iter()
            .map(|q| self.weights.get(q).copied().unwrap_or(0))
            .sum()
    }
}

impl Selector for Weighted {
    fn choose(&self, candidates: &[FoundSet]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                self.weight_of(a)
                    .cmp(&self.weight_of(b))
                    .then(a.len().cmp(&b.len()))
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::Grounding;

    fn set(ids: &[usize]) -> FoundSet {
        FoundSet {
            queries: ids.iter().map(|&i| QueryId(i)).collect(),
            grounding: Grounding::new(),
        }
    }

    #[test]
    fn max_size_picks_largest_first_on_tie() {
        let cands = vec![set(&[0]), set(&[1, 2]), set(&[3, 4])];
        assert_eq!(MaxSize.choose(&cands), Some(1));
        assert_eq!(MaxSize.choose(&[]), None);
    }

    #[test]
    fn prefer_query_overrides_size() {
        let cands = vec![set(&[0, 1, 2]), set(&[5])];
        let sel = PreferQuery { vip: QueryId(5) };
        assert_eq!(sel.choose(&cands), Some(1));
        // VIP absent everywhere: falls back to max size.
        let sel2 = PreferQuery { vip: QueryId(9) };
        assert_eq!(sel2.choose(&cands), Some(0));
    }

    #[test]
    fn weighted_sums_member_weights() {
        let cands = vec![set(&[0, 1]), set(&[2])];
        let sel = Weighted::new([(QueryId(2), 10), (QueryId(0), 1), (QueryId(1), 2)]);
        assert_eq!(sel.choose(&cands), Some(1));
    }
}
