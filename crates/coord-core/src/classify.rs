//! Recognizing the consistent fragment: Definitions 7–9 on *general*
//! entangled queries.
//!
//! [`classify`] checks whether an arbitrary [`EntangledQuery`] has the
//! Section 5 general form
//!
//! ```text
//! {R(y_1, f_1), R(y_2, c_2), ...}  R(x, User) :-
//!     S(x, a^x_1, ..., a^x_d), F(User, f_1), Π_i S(y_i, a^i_1, ..., a^i_d)
//! ```
//!
//! and is **A-consistent** — A-coordinating (Definition 7: the same
//! constant or variable for the user and all partners on every
//! coordination attribute) and Ā-non-coordinating (Definition 8: all
//! partner terms on non-coordination attributes are distinct fresh
//! variables) — returning the recovered structured
//! [`ConsistentQuery`]. It is the inverse of
//! [`ConsistentQuery::to_entangled`], which the round-trip tests pin
//! down.

use crate::consistent::{ConsistentConfig, ConsistentQuery, Partner};
use crate::query::EntangledQuery;
use coord_db::{Atom, Database, Term, Value, Var};
use std::collections::HashMap;

/// Why a query is not in the consistent fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotConsistent {
    /// The query must have exactly one head of the form `R(x, User)`.
    BadHead(String),
    /// A postcondition is not of the form `R(y, partner)`.
    BadPostcondition(String),
    /// A body atom is neither an `S`-atom nor a binary friendship atom.
    BadBodyAtom(String),
    /// The user's own `S(x, ...)`-atom is missing or duplicated.
    BadSelfAtom(String),
    /// A partner's tuple variable `y_i` has no (or multiple) `S`-atoms.
    BadPartnerAtom(String),
    /// A variable partner `f_i` lacks its `F(User, f_i)` friendship atom.
    UnboundFriendVariable(String),
    /// Definition 7 fails: user and partners disagree on a coordination
    /// attribute.
    NotACoordinating { attribute: String },
    /// Definition 8 fails: a partner constrains (or shares) a
    /// non-coordination attribute.
    NotNonCoordinating { attribute: String },
    /// The database schema does not match the configuration.
    Schema(String),
}

impl std::fmt::Display for NotConsistent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotConsistent::BadHead(m) => write!(f, "head is not R(x, User): {m}"),
            NotConsistent::BadPostcondition(m) => {
                write!(f, "postcondition is not R(y, partner): {m}")
            }
            NotConsistent::BadBodyAtom(m) => write!(f, "unexpected body atom: {m}"),
            NotConsistent::BadSelfAtom(m) => write!(f, "bad self tuple atom: {m}"),
            NotConsistent::BadPartnerAtom(m) => write!(f, "bad partner tuple atom: {m}"),
            NotConsistent::UnboundFriendVariable(m) => {
                write!(f, "friend variable without friendship atom: {m}")
            }
            NotConsistent::NotACoordinating { attribute } => {
                write!(
                    f,
                    "not A-coordinating on attribute `{attribute}` (Definition 7)"
                )
            }
            NotConsistent::NotNonCoordinating { attribute } => write!(
                f,
                "not non-coordinating on attribute `{attribute}` (Definition 8)"
            ),
            NotConsistent::Schema(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for NotConsistent {}

/// Check Definitions 7–9 for `query` under `config`, recovering the
/// structured form on success.
pub fn classify(
    query: &EntangledQuery,
    config: &ConsistentConfig,
    db: &Database,
) -> Result<ConsistentQuery, NotConsistent> {
    let table = db
        .table(&config.table)
        .map_err(|e| NotConsistent::Schema(e.to_string()))?;
    let schema = table.schema();
    let key_pos = schema
        .attr_index(&config.key)
        .ok_or_else(|| NotConsistent::Schema(format!("missing key `{}`", config.key)))?;
    let coord_pos: Vec<usize> = config
        .coord_attrs
        .iter()
        .map(|a| {
            schema
                .attr_index(a)
                .ok_or_else(|| NotConsistent::Schema(format!("missing attribute `{a}`")))
        })
        .collect::<Result<_, _>>()?;
    let personal_pos: Vec<usize> = config
        .personal_attrs
        .iter()
        .map(|a| {
            schema
                .attr_index(a)
                .ok_or_else(|| NotConsistent::Schema(format!("missing attribute `{a}`")))
        })
        .collect::<Result<_, _>>()?;

    // --- Head: exactly one R(x, User) with x a variable, User constant.
    let [head]: &[Atom] = query.heads() else {
        return Err(NotConsistent::BadHead(format!(
            "{} heads",
            query.heads().len()
        )));
    };
    if head.arity() != 2 {
        return Err(NotConsistent::BadHead(format!("arity {}", head.arity())));
    }
    let Some(x) = head.terms[0].as_var() else {
        return Err(NotConsistent::BadHead(
            "tuple position must be a variable".into(),
        ));
    };
    let Some(user) = head.terms[1].as_const().cloned() else {
        return Err(NotConsistent::BadHead(
            "user position must be a constant".into(),
        ));
    };
    let answer_rel = &head.relation;

    // --- Partition body atoms into S-atoms and friendship atoms.
    let mut s_atoms: Vec<&Atom> = Vec::new();
    let mut friend_atoms: Vec<&Atom> = Vec::new();
    for atom in query.body() {
        if atom.relation == config.table {
            if atom.arity() != schema.arity() {
                return Err(NotConsistent::BadBodyAtom(format!(
                    "S-atom arity {}",
                    atom.arity()
                )));
            }
            s_atoms.push(atom);
        } else {
            // Friendship atoms: binary, first argument = the user constant.
            if atom.arity() == 2 && atom.terms[0].as_const() == Some(&user) {
                friend_atoms.push(atom);
            } else {
                return Err(NotConsistent::BadBodyAtom(format!("{atom:?}")));
            }
        }
    }

    // Index S-atoms by their key-position variable.
    let mut s_by_var: HashMap<Var, &Atom> = HashMap::new();
    for atom in &s_atoms {
        let Some(v) = atom.terms[key_pos].as_var() else {
            return Err(NotConsistent::BadBodyAtom(format!(
                "S-atom key position must be a variable: {atom:?}"
            )));
        };
        if s_by_var.insert(v, atom).is_some() {
            return Err(NotConsistent::BadPartnerAtom(format!(
                "two S-atoms share tuple variable {v:?}"
            )));
        }
    }
    let self_atom = *s_by_var
        .get(&x)
        .ok_or_else(|| NotConsistent::BadSelfAtom(format!("no S-atom for {x:?}")))?;

    // --- Postconditions: R(y_i, partner_i).
    let mut partners: Vec<Partner> = Vec::new();
    let mut partner_atoms: Vec<&Atom> = Vec::new();
    for p in query.postconditions() {
        if &p.relation != answer_rel || p.arity() != 2 {
            return Err(NotConsistent::BadPostcondition(format!("{p:?}")));
        }
        let Some(y) = p.terms[0].as_var() else {
            return Err(NotConsistent::BadPostcondition(
                "tuple position must be a variable".into(),
            ));
        };
        let atom = *s_by_var
            .get(&y)
            .ok_or_else(|| NotConsistent::BadPartnerAtom(format!("no S-atom for {y:?}")))?;
        partner_atoms.push(atom);
        match &p.terms[1] {
            Term::Const(c) => partners.push(Partner::Named(c.clone())),
            Term::Var(f) => {
                // Must be bound by exactly one friendship atom F(User, f).
                let matching: Vec<&&Atom> = friend_atoms
                    .iter()
                    .filter(|a| a.terms[1].as_var() == Some(*f))
                    .collect();
                let [friendship] = matching.as_slice() else {
                    return Err(NotConsistent::UnboundFriendVariable(format!("{f:?}")));
                };
                if friendship.relation == config.friends {
                    partners.push(Partner::AnyFriend);
                } else {
                    partners.push(Partner::AnyFriendVia(friendship.relation.clone()));
                }
            }
        }
    }

    // Every S-atom must be the self atom or some partner's atom.
    if s_atoms.len() != 1 + partner_atoms.len() {
        return Err(NotConsistent::BadPartnerAtom(format!(
            "{} S-atoms for {} partners",
            s_atoms.len(),
            partner_atoms.len()
        )));
    }

    // --- Definition 7 (A-coordinating): per coordination attribute, the
    // user's term and every partner's term must be identical.
    let mut coord: Vec<Option<Value>> = Vec::with_capacity(coord_pos.len());
    for (j, &pos) in coord_pos.iter().enumerate() {
        let own = &self_atom.terms[pos];
        for atom in &partner_atoms {
            if &atom.terms[pos] != own {
                return Err(NotConsistent::NotACoordinating {
                    attribute: config.coord_attrs[j].clone(),
                });
            }
        }
        coord.push(own.as_const().cloned());
    }

    // --- Definition 8 (Ā-non-coordinating): on every non-coordination
    // attribute, all partner terms are variables, pairwise distinct, and
    // distinct from every other variable occurrence in the query.
    let mut occurrence_count: HashMap<Var, usize> = HashMap::new();
    for atom in query.all_atoms() {
        for v in atom.vars() {
            *occurrence_count.entry(v).or_insert(0) += 1;
        }
    }
    let mut personal: Vec<Option<Value>> = Vec::with_capacity(personal_pos.len());
    for (j, &pos) in personal_pos.iter().enumerate() {
        for atom in &partner_atoms {
            match atom.terms[pos].as_var() {
                Some(v) if occurrence_count[&v] == 1 => {}
                _ => {
                    return Err(NotConsistent::NotNonCoordinating {
                        attribute: config.personal_attrs[j].clone(),
                    });
                }
            }
        }
        personal.push(self_atom.terms[pos].as_const().cloned());
    }

    Ok(ConsistentQuery {
        user,
        partners,
        coord,
        personal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn setup() -> (Database, ConsistentConfig) {
        let mut db = Database::new();
        db.create_table("S", &["key", "place", "item"]).unwrap();
        db.insert("S", vec![Value::int(1), Value::str("P"), Value::str("I")])
            .unwrap();
        db.create_table("F", &["user", "friend"]).unwrap();
        db.create_table("Colleagues", &["user", "peer"]).unwrap();
        (
            db,
            ConsistentConfig::new("S", "key", &["place"], &["item"], "F"),
        )
    }

    #[test]
    fn round_trips_with_to_entangled() {
        let (db, config) = setup();
        let cases = vec![
            ConsistentQuery::for_user("Alice", 1, 1),
            ConsistentQuery::for_user("Alice", 1, 1).with_any_friend(),
            ConsistentQuery::for_user("Alice", 1, 1)
                .with_named_partner("Bob")
                .coord_const(0, "P"),
            ConsistentQuery::for_user("Alice", 1, 1)
                .with_any_friend()
                .with_named_partner("Carol")
                .personal_const(0, "I"),
            ConsistentQuery::for_user("Alice", 1, 1).with_any_friend_via("Colleagues"),
        ];
        for q in cases {
            let ent = q.to_entangled(&config, &db).unwrap();
            let back = classify(&ent, &config, &db)
                .unwrap_or_else(|e| panic!("classify failed on {q:?}: {e}"));
            assert_eq!(back, q);
        }
    }

    #[test]
    fn rejects_coordination_disagreement() {
        // The user's tuple and the partner's tuple use different
        // coordination-attribute variables: not A-coordinating.
        let (db, config) = setup();
        let q = parse_query("{R(y, Bob)} R(x, Alice) :- S(x, a, p), S(y, b, q)").unwrap();
        let err = classify(&q, &config, &db).unwrap_err();
        assert!(
            matches!(err, NotConsistent::NotACoordinating { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_partner_personal_constraint() {
        // The partner's item is constrained to a constant: not
        // non-coordinating (Definition 8).
        let (db, config) = setup();
        let q = parse_query("{R(y, Bob)} R(x, Alice) :- S(x, a, p), S(y, a, ItemX)").unwrap();
        let err = classify(&q, &config, &db).unwrap_err();
        assert!(
            matches!(err, NotConsistent::NotNonCoordinating { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_shared_personal_variable() {
        // The partner's item *shares* the user's item variable: partners
        // must use fresh distinct variables on non-coordination attrs.
        let (db, config) = setup();
        let q = parse_query("{R(y, Bob)} R(x, Alice) :- S(x, a, p), S(y, a, p)").unwrap();
        let err = classify(&q, &config, &db).unwrap_err();
        assert!(
            matches!(err, NotConsistent::NotNonCoordinating { .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_missing_friendship_atom() {
        let (db, config) = setup();
        let q = parse_query("{R(y, f)} R(x, Alice) :- S(x, a, p), S(y, a, q)").unwrap();
        let err = classify(&q, &config, &db).unwrap_err();
        assert!(
            matches!(err, NotConsistent::UnboundFriendVariable(_)),
            "{err}"
        );
    }

    #[test]
    fn rejects_multi_head_queries() {
        let (db, config) = setup();
        let q = parse_query("{} R(x, Alice), R(y, Alice2) :- S(x, a, p), S(y, a, q)").unwrap();
        let err = classify(&q, &config, &db).unwrap_err();
        assert!(matches!(err, NotConsistent::BadHead(_)), "{err}");
    }

    #[test]
    fn accepts_paper_general_form_written_by_hand() {
        // The Section 5 general form written in the textual syntax; the
        // coordination attribute `place` is the shared variable `a`.
        let (db, config) = setup();
        let q = parse_query(
            "{R(y1, f1), R(y2, Carol)} R(x, Alice) :- \
             S(x, a, MyItem), F(Alice, f1), S(y1, a, u1), S(y2, a, u2)",
        )
        .unwrap();
        let c = classify(&q, &config, &db).unwrap();
        assert_eq!(c.user, Value::str("Alice"));
        assert_eq!(
            c.partners,
            vec![Partner::AnyFriend, Partner::Named(Value::str("Carol"))]
        );
        assert_eq!(c.coord, vec![None]);
        assert_eq!(c.personal, vec![Some(Value::str("MyItem"))]);
    }
}
