//! Coordination for **single-connected** query sets (Definition 6 /
//! Theorem 3): every query has at most one postcondition atom and the
//! coordination graph has at most one simple path between every ordered
//! pair of queries.
//!
//! The paper states Theorem 3 — `Entangled(Q_sc)` is solvable with a
//! linear number of (linear-size) conjunctive queries — without spelling
//! out the algorithm. We implement the natural one: a *choice-closure*
//! search. Starting from a seed query, every unresolved postcondition
//! picks one of its unifiable heads (sets here need **not** be safe —
//! alternative heads are exactly what this fragment keeps tractable);
//! picking a head pulls its query (and, transitively, that query's own
//! postcondition) into the candidate set. Each complete choice function
//! is grounded with a single conjunctive query.
//!
//! Single-connectedness makes this efficient: alternative branches of a
//! postcondition reach *disjoint* query sets (two branches meeting again
//! would create two simple paths), so choices at different postconditions
//! never conflict structurally and failed branches prune immediately. In
//! the worst case over the fragment the number of groundings is the total
//! number of alternative edges — linear in the size of the coordination
//! graph, matching the theorem's bound.

use crate::combined::ground_members;
use crate::error::CoordError;
use crate::graphs::{check_single_connected, HeadIndex};
use crate::instance::QuerySet;
use crate::outcome::FoundSet;
use crate::query::{EntangledQuery, QueryId};
use crate::unify::{atoms_unifiable, Substitution};
use coord_db::{Atom, Database};
use std::collections::BTreeSet;

/// Outcome of the single-connected solver.
#[derive(Debug)]
pub struct SingleConnectedOutcome {
    /// The query set.
    pub qs: QuerySet,
    /// One coordinating set per seed query that can coordinate (deduped).
    pub found: Vec<FoundSet>,
    /// Complete choice functions grounded against the database — the
    /// "number of conjunctive queries" of Theorem 3.
    pub groundings_tried: u64,
}

impl SingleConnectedOutcome {
    /// A maximum-size coordinating set among the discovered ones.
    pub fn best(&self) -> Option<&FoundSet> {
        self.found.iter().max_by_key(|f| f.len())
    }
}

/// Solve a single-connected instance.
///
/// Errors with [`CoordError::NotSingleConnected`] if the input violates
/// Definition 6.
pub fn single_connected_coordinate(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<SingleConnectedOutcome, CoordError> {
    let qs = QuerySet::new(queries.to_vec());
    qs.validate(db)?;
    check_single_connected(&qs).map_err(|reason| CoordError::NotSingleConnected { reason })?;

    let index = HeadIndex::build(&qs);
    let mut found: Vec<FoundSet> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<QueryId>> = BTreeSet::new();
    let mut groundings_tried = 0u64;

    for seed in qs.ids() {
        // Skip seeds already covered by a discovered set: their
        // choice-closure grounded once; re-deriving it adds nothing.
        if found.iter().any(|f| f.contains(seed)) {
            continue;
        }
        let mut included: BTreeSet<QueryId> = BTreeSet::new();
        included.insert(seed);
        let pending: Vec<QueryId> = vec![seed];
        let chosen: Vec<(Atom, Atom)> = Vec::new();
        if let Some((members, grounding)) = extend(
            db,
            &qs,
            &index,
            included,
            pending,
            chosen,
            &mut groundings_tried,
        )? {
            if seen_sets.insert(members.clone()) {
                found.push(FoundSet {
                    queries: members,
                    grounding,
                });
            }
        }
    }

    Ok(SingleConnectedOutcome {
        qs,
        found,
        groundings_tried,
    })
}

/// Depth-first search over choice functions. `pending` holds queries
/// whose (single) postcondition has not been matched yet; `chosen` the
/// globalized (postcondition, head) pairs committed so far.
fn extend(
    db: &Database,
    qs: &QuerySet,
    index: &HeadIndex,
    included: BTreeSet<QueryId>,
    mut pending: Vec<QueryId>,
    chosen: Vec<(Atom, Atom)>,
    groundings_tried: &mut u64,
) -> Result<Option<(Vec<QueryId>, crate::semantics::Grounding)>, CoordError> {
    // Resolve the next pending postcondition, if any.
    let Some(owner) = pending.pop() else {
        // All postconditions matched: unify the chosen pairs and ground.
        let mut subst = Substitution::identity(qs.total_vars());
        for (p, h) in &chosen {
            if subst.unify_atoms(p, h).is_err() {
                return Ok(None);
            }
        }
        let members: Vec<QueryId> = included.iter().copied().collect();
        *groundings_tried += 1;
        return Ok(
            ground_members(db, qs, &members, &mut subst)?.map(|grounding| (members, grounding))
        );
    };

    let posts = qs.query(owner).postconditions();
    debug_assert!(
        posts.len() <= 1,
        "single-connected queries have ≤ 1 postcondition"
    );
    let Some(p_local) = posts.first() else {
        // No postcondition: nothing to match for this query.
        return extend(db, qs, index, included, pending, chosen, groundings_tried);
    };
    let p_global = qs.globalize(owner, p_local);

    // Try each unifiable head as the producer.
    for (producer, hi) in index.candidates(p_local) {
        let h_local = &qs.query(producer).heads()[hi];
        if !atoms_unifiable(p_local, h_local) {
            continue;
        }
        let h_global = qs.globalize(producer, h_local);
        let mut next_included = included.clone();
        let mut next_pending = pending.clone();
        if next_included.insert(producer) {
            next_pending.push(producer); // its own postcondition joins the queue
        }
        let mut next_chosen = chosen.clone();
        next_chosen.push((p_global.clone(), h_global));
        if let Some(result) = extend(
            db,
            qs,
            index,
            next_included,
            next_pending,
            next_chosen,
            groundings_tried,
        )? {
            return Ok(Some(result));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["id", "dest"]).unwrap();
        db.insert("F", vec![Value::int(1), Value::str("Zurich")])
            .unwrap();
        db.insert("F", vec![Value::int(2), Value::str("Paris")])
            .unwrap();
        db
    }

    #[test]
    fn alternative_branches_are_explored() {
        // c's postcondition R(u, ·) can be served by producer a (Zurich)
        // or producer b (Paris) — an *unsafe* but single-connected set.
        // c's own body forces Paris, so only the b-branch grounds.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("F", |x| x.var("p").constant("Zurich"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("u").var("q"))
            .body("F", |x| x.var("q").constant("Paris"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("F", |x| x.var("r").constant("Paris"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![a, b, c];
        let out = single_connected_coordinate(&db, &queries).unwrap();
        let best = out.best().unwrap();
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
        // c coordinates with b alone — the a-branch is not needed.
        assert!(best.contains(QueryId(2)));
        assert!(best.contains(QueryId(1)));
    }

    #[test]
    fn doomed_branch_does_not_poison_the_seed() {
        // q1's postcondition matches both q0's head (unsatisfiable body)
        // and its own head. The correct answer is {q1} alone — the case
        // that distinguishes choice-closures from successor-closures.
        let q0 = QueryBuilder::new("q0")
            .head("R", |x| x.constant("L").var("p"))
            .body("F", |x| x.var("p").constant("Nowhere"))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |x| x.constant("L").var("y"))
            .head("R", |x| x.constant("L").var("x"))
            .body("F", |x| x.var("x").constant("Paris"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![q0, q1];
        let out = single_connected_coordinate(&db, &queries).unwrap();
        let best = out.best().unwrap();
        assert_eq!(best.queries, vec![QueryId(1)]);
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn cycle_of_single_postconditions() {
        // a needs b, b needs a: coordinates on the same flight.
        let a = QueryBuilder::new("a")
            .postcondition("R", |x| x.constant("b").var("p"))
            .head("R", |x| x.constant("a").var("p"))
            .body("F", |x| x.var("p").constant("Zurich"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .postcondition("R", |x| x.constant("a").var("q"))
            .head("R", |x| x.constant("b").var("q"))
            .body("F", |x| x.var("q").constant("Zurich"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![a, b];
        let out = single_connected_coordinate(&db, &queries).unwrap();
        assert_eq!(out.best().unwrap().len(), 2);
    }

    #[test]
    fn rejects_multi_postcondition_queries() {
        let q = QueryBuilder::new("q")
            .postcondition("R", |x| x.constant("a").var("p"))
            .postcondition("R", |x| x.constant("b").var("p"))
            .head("R", |x| x.constant("q").var("p"))
            .body("F", |x| x.var("p").constant("Zurich"))
            .build()
            .unwrap();
        let db = db();
        assert!(matches!(
            single_connected_coordinate(&db, &[q]),
            Err(CoordError::NotSingleConnected { .. })
        ));
    }

    #[test]
    fn rejects_diamond_paths() {
        // d → b → a and d → c → a gives two simple paths d ⇝ a.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("a").var("p"))
            .body("F", |x| x.var("p").constant("Zurich"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .postcondition("R", |x| x.constant("a").var("q"))
            .head("S", |x| x.constant("shared").var("q"))
            .body("F", |x| x.var("q").constant("Zurich"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("a").var("r"))
            .head("S", |x| x.constant("shared").var("r"))
            .body("F", |x| x.var("r").constant("Paris"))
            .build()
            .unwrap();
        let d = QueryBuilder::new("d")
            .postcondition("S", |x| x.constant("shared").var("s"))
            .head("R", |x| x.constant("d").var("s"))
            .body("F", |x| x.var("s").constant("Paris"))
            .build()
            .unwrap();
        let db = db();
        assert!(matches!(
            single_connected_coordinate(&db, &[a, b, c, d]),
            Err(CoordError::NotSingleConnected { .. })
        ));
    }

    #[test]
    fn agrees_with_bruteforce_on_small_instances() {
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("F", |x| x.var("p").constant("Zurich"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("F", |x| x.var("r").constant("Zurich"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![a, c];
        let sc = single_connected_coordinate(&db, &queries).unwrap();
        let bf = crate::bruteforce::any_coordinating_set(&db, &queries).unwrap();
        assert_eq!(sc.best().is_some(), bf.best.is_some());
    }

    #[test]
    fn grounding_count_stays_small_on_chains() {
        // A chain of n single-postcondition queries: the search grounds
        // once per seed not yet covered — the linear bound of Theorem 3.
        let mut db = Database::new();
        db.create_table("F", &["id", "dest"]).unwrap();
        db.insert("F", vec![Value::int(1), Value::str("Zurich")])
            .unwrap();
        let n = 12;
        let queries: Vec<_> = (0..n)
            .map(|i| {
                let mut b = QueryBuilder::new(format!("q{i}"));
                if i + 1 < n {
                    b = b.postcondition("R", |x| x.constant(format!("u{}", i + 1)).var("y"));
                }
                b.head("R", |x| x.constant(format!("u{i}")).var("x"))
                    .body("F", |x| x.var("x").constant("Zurich"))
                    .build()
                    .unwrap()
            })
            .collect();
        let out = single_connected_coordinate(&db, &queries).unwrap();
        assert_eq!(out.best().unwrap().len(), n);
        // Seed q0 covers the whole chain; the remaining seeds are skipped.
        assert_eq!(out.groundings_tried, 1);
    }
}
