//! Query sets: a batch of entangled queries with one global variable space.
//!
//! Each [`crate::query::EntangledQuery`] names its variables locally
//! (`Var(0)..Var(k)`). Unification and combined-query construction need a
//! single namespace, so a [`QuerySet`] assigns each query a contiguous
//! block of *global* variable ids and rewrites atoms on demand.

use crate::error::CoordError;
use crate::query::{EntangledQuery, QueryId};
use coord_db::{Atom, Database, Symbol, Term, Var};
use std::collections::HashMap;

/// A batch of entangled queries sharing a global variable space.
#[derive(Clone, Debug)]
pub struct QuerySet {
    queries: Vec<EntangledQuery>,
    /// Global id of each query's `Var(0)`.
    offsets: Vec<u32>,
    total_vars: u32,
}

impl QuerySet {
    /// Build a query set from queries.
    pub fn new(queries: impl Into<Vec<EntangledQuery>>) -> Self {
        let queries = queries.into();
        let mut offsets = Vec::with_capacity(queries.len());
        let mut total = 0u32;
        for q in &queries {
            offsets.push(total);
            total += q.var_count();
        }
        QuerySet {
            queries,
            offsets,
            total_vars: total,
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterate over query ids.
    pub fn ids(&self) -> impl Iterator<Item = QueryId> {
        (0..self.queries.len()).map(QueryId)
    }

    /// The query with the given id.
    pub fn query(&self, id: QueryId) -> &EntangledQuery {
        &self.queries[id.index()]
    }

    /// All queries in order.
    pub fn queries(&self) -> &[EntangledQuery] {
        &self.queries
    }

    /// Total number of global variables.
    pub fn total_vars(&self) -> u32 {
        self.total_vars
    }

    /// Map a query-local variable to its global id.
    pub fn global_var(&self, id: QueryId, local: Var) -> Var {
        debug_assert!(local.0 < self.queries[id.index()].var_count());
        Var(self.offsets[id.index()] + local.0)
    }

    /// The query owning a global variable, with the local variable.
    pub fn owner_of(&self, global: Var) -> (QueryId, Var) {
        // Binary search over offsets: offsets is sorted ascending.
        let i = match self.offsets.binary_search(&global.0) {
            Ok(mut i) => {
                // Zero-variable queries share offsets; take the last query
                // whose offset equals the global id and which has variables.
                while i + 1 < self.offsets.len() && self.offsets[i + 1] == global.0 {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (QueryId(i), Var(global.0 - self.offsets[i]))
    }

    /// Human-readable name of a global variable: `"query.var"`.
    pub fn var_display(&self, global: Var) -> String {
        let (q, local) = self.owner_of(global);
        format!("{}.{}", self.query(q).name(), self.query(q).var_name(local))
    }

    /// Rewrite an atom of query `id` into the global variable space.
    pub fn globalize(&self, id: QueryId, atom: &Atom) -> Atom {
        let off = self.offsets[id.index()];
        Atom::new(
            atom.relation.clone(),
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(Var(off + v.0)),
                    Term::Const(c) => Term::Const(c.clone()),
                })
                .collect(),
        )
    }

    /// Globalized postcondition atoms of query `id`.
    pub fn postconditions(&self, id: QueryId) -> Vec<Atom> {
        self.query(id)
            .postconditions()
            .iter()
            .map(|a| self.globalize(id, a))
            .collect()
    }

    /// Globalized head atoms of query `id`.
    pub fn heads(&self, id: QueryId) -> Vec<Atom> {
        self.query(id)
            .heads()
            .iter()
            .map(|a| self.globalize(id, a))
            .collect()
    }

    /// Globalized body atoms of query `id`.
    pub fn body(&self, id: QueryId) -> Vec<Atom> {
        self.query(id)
            .body()
            .iter()
            .map(|a| self.globalize(id, a))
            .collect()
    }

    /// Global variables of query `id`.
    pub fn vars_of(&self, id: QueryId) -> impl Iterator<Item = Var> + '_ {
        let off = self.offsets[id.index()];
        (0..self.query(id).var_count()).map(move |i| Var(off + i))
    }

    /// Validate every query against the database (Section 2.1 syntax
    /// requirements) and check that each answer relation is used with a
    /// consistent arity across the whole set.
    pub fn validate(&self, db: &Database) -> Result<(), CoordError> {
        let mut arities: HashMap<Symbol, usize> = HashMap::new();
        for q in &self.queries {
            q.validate(db)?;
            for atom in q.postconditions().iter().chain(q.heads()) {
                match arities.get(&atom.relation) {
                    Some(&n) if n != atom.arity() => {
                        return Err(CoordError::AnswerArityMismatch {
                            relation: atom.relation.to_string(),
                            expected: n,
                            actual: atom.arity(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        arities.insert(atom.relation.clone(), atom.arity());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn two_queries() -> QuerySet {
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        QuerySet::new(vec![q1, q2])
    }

    #[test]
    fn offsets_are_contiguous() {
        let qs = two_queries();
        assert_eq!(qs.total_vars(), 2);
        assert_eq!(qs.global_var(QueryId(0), Var(0)), Var(0));
        assert_eq!(qs.global_var(QueryId(1), Var(0)), Var(1));
    }

    #[test]
    fn owner_of_round_trips() {
        let qs = two_queries();
        for id in qs.ids() {
            for g in qs.vars_of(id) {
                let (owner, local) = qs.owner_of(g);
                assert_eq!(owner, id);
                assert_eq!(qs.global_var(owner, local), g);
            }
        }
    }

    #[test]
    fn owner_of_with_zero_var_queries() {
        let q0 = QueryBuilder::new("a")
            .head("C", |a| a.constant(1i64))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("b")
            .head("R", |a| a.var("x"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![q0, q1]);
        // Global var 0 belongs to query "b" even though "a" has offset 0.
        let (owner, local) = qs.owner_of(Var(0));
        assert_eq!(qs.query(owner).name(), "b");
        assert_eq!(local, Var(0));
    }

    #[test]
    fn globalize_shifts_vars_not_consts() {
        let qs = two_queries();
        let heads = qs.heads(QueryId(1));
        assert_eq!(heads[0].terms[1], Term::Var(Var(1)));
        assert!(heads[0].terms[0].is_const());
    }

    #[test]
    fn var_display_names() {
        let qs = two_queries();
        assert_eq!(qs.var_display(Var(0)), "q1.x");
        assert_eq!(qs.var_display(Var(1)), "q2.y");
    }

    #[test]
    fn validate_checks_answer_arity_consistency() {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        let q1 = QueryBuilder::new("q1")
            .head("R", |a| a.constant("A").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.var("y")) // arity 1 vs 2
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![q1, q2]);
        assert!(matches!(
            qs.validate(&db),
            Err(CoordError::AnswerArityMismatch { .. })
        ));
    }
}
