//! # coord-core — entangled queries and coordination algorithms
//!
//! The primary contribution of *"The Complexity of Social Coordination"*
//! (Mamouras, Oren, Seeman, Kot, Gehrke — PVLDB 5(11), 2012), rebuilt as a
//! Rust library:
//!
//! * [`query`] / [`instance`] — entangled-query syntax `{P} H :- B` and
//!   query sets with a global variable space (Section 2.1),
//! * [`unify`] — Most General Unifiers over atoms (union-find),
//! * [`graphs`] — (extended) coordination graphs, **safety**
//!   (Definition 2), **uniqueness** (Definition 3), and
//!   **single-connectedness** (Definition 6),
//! * [`semantics`] — the coordinating-set definition (Definition 1) as an
//!   executable verifier: the ground truth every algorithm is checked
//!   against,
//! * [`gupta`] — the Gupta et al. baseline for safe+unique sets,
//! * [`scc`] — the **SCC Coordination Algorithm** (Section 4): safe sets
//!   without uniqueness, one DB query per strongly connected component,
//! * [`consistent`] — the **Consistent Coordination Algorithm**
//!   (Section 5): unsafe sets where all users coordinate on the same
//!   attributes,
//! * [`single_connected`] — the tractable fragment of Theorem 3,
//! * [`bruteforce`] — exponential exact search (the NP-hard general
//!   problem, Theorems 1–2), used as ground truth in tests,
//! * [`parse`] — a parser for the paper's textual `{P} H :- B` notation,
//! * [`classify`] — Definitions 7–9 as a recognizer: checks whether a
//!   general entangled query is A-consistent and recovers its structured
//!   form,
//! * [`selector`] — pluggable selection among coordinating sets,
//! * [`differential`] — memoized closure evaluation: per-sweep delta
//!   joins along the condensation plus a content-addressed cross-run
//!   verdict cache (DBSP-style incremental view maintenance),
//! * [`engine`] — a Youtopia-style online evaluation loop: a thin
//!   adapter wiring the SCC algorithm into the `coord-engine` service
//!   crate's incremental, sharded machinery,
//! * [`persist`] — durable variants of the online engines: the
//!   `coord-store` WAL/snapshot subsystem with an [`EntangledQuery`]
//!   codec, so acknowledged submits survive crashes.
//!
//! ## Quickstart
//!
//! The Section 2.1 flight example — Gwyneth and Chris coordinate on a
//! flight to Zurich:
//!
//! ```
//! use coord_core::scc::SccCoordinator;
//! use coord_core::QueryBuilder;
//! use coord_db::{Database, Value};
//!
//! let mut db = Database::new();
//! db.create_table("Flights", &["flightId", "destination"]).unwrap();
//! db.insert("Flights", vec![Value::int(101), Value::str("Zurich")]).unwrap();
//!
//! // q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
//! let q1 = QueryBuilder::new("q1")
//!     .postcondition("R", |a| a.constant("Chris").var("x"))
//!     .head("R", |a| a.constant("Gwyneth").var("x"))
//!     .body("Flights", |a| a.var("x").constant("Zurich"))
//!     .build()
//!     .unwrap();
//! // q2 = {} R(Chris, y) :- Flights(y, Zurich)
//! let q2 = QueryBuilder::new("q2")
//!     .head("R", |a| a.constant("Chris").var("y"))
//!     .body("Flights", |a| a.var("y").constant("Zurich"))
//!     .build()
//!     .unwrap();
//!
//! let outcome = SccCoordinator::new(&db).run(&[q1, q2]).unwrap();
//! let set = outcome.best().expect("a coordinating set exists");
//! assert_eq!(set.queries.len(), 2); // both fly on flight 101
//! ```

#![deny(unsafe_code)]

pub mod bruteforce;
pub mod classify;
pub mod combined;
pub mod consistent;
pub mod differential;
pub mod engine;
pub mod error;
pub mod graphs;
pub mod gupta;
pub mod instance;
pub mod outcome;
pub mod parse;
pub mod persist;
pub mod query;
pub mod scc;
pub mod selector;
pub mod semantics;
pub mod single_connected;
pub mod unify;

pub use differential::{ClosureCache, GroundWork, MemoStats};
pub use error::CoordError;
pub use instance::QuerySet;
pub use outcome::FoundSet;
pub use persist::{DurableCoordinationEngine, DurableSharedEngine};
pub use query::{EntangledQuery, QueryBuilder, QueryId};
pub use semantics::{check_coordinating_set, Grounding, Violation};
