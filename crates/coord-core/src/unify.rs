//! Unification of atoms over the global variable space.
//!
//! The algorithms of Sections 4–5 repeatedly compute Most General Unifiers
//! of postcondition atoms with head atoms. A [`Substitution`] is a
//! union-find structure over global variables, where each equivalence
//! class optionally carries a constant binding. Unifying two atoms merges
//! classes positionally; a conflict between two distinct constants makes
//! unification fail.

use coord_db::{Atom, Term, Value, Var};
use std::fmt;

/// Why unification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnifyError {
    /// The atoms are over different relations.
    RelationMismatch { left: String, right: String },
    /// The atoms have different arities.
    ArityMismatch {
        relation: String,
        left: usize,
        right: usize,
    },
    /// Two distinct constants collided (directly or through variable
    /// classes).
    ConstantConflict { left: Value, right: Value },
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::RelationMismatch { left, right } => {
                write!(f, "cannot unify atoms over `{left}` and `{right}`")
            }
            UnifyError::ArityMismatch {
                relation,
                left,
                right,
            } => {
                write!(f, "arity mismatch on `{relation}`: {left} vs {right}")
            }
            UnifyError::ConstantConflict { left, right } => {
                write!(f, "constant conflict: {left} ≠ {right}")
            }
        }
    }
}

impl std::error::Error for UnifyError {}

/// A substitution over `n` global variables: union-find with per-class
/// constant bindings.
#[derive(Clone, Debug)]
pub struct Substitution {
    parent: Vec<u32>,
    rank: Vec<u8>,
    binding: Vec<Option<Value>>,
}

impl Substitution {
    /// The identity substitution over `n_vars` variables.
    pub fn identity(n_vars: u32) -> Self {
        Substitution {
            parent: (0..n_vars).collect(),
            rank: vec![0; n_vars as usize],
            binding: vec![None; n_vars as usize],
        }
    }

    /// Number of variables covered.
    pub fn n_vars(&self) -> u32 {
        self.parent.len() as u32
    }

    /// Representative of `v`'s class (with path halving).
    pub fn find(&mut self, v: Var) -> Var {
        let mut x = v.0 as usize;
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        Var(x as u32)
    }

    /// Representative without mutation (no path compression).
    pub fn find_immutable(&self, v: Var) -> Var {
        let mut x = v.0 as usize;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        Var(x as u32)
    }

    /// Whether `v`'s class is bound to a constant (immutable lookup, no
    /// path compression — safe on shared substitutions).
    pub fn is_bound(&self, v: Var) -> bool {
        self.binding[self.find_immutable(v).0 as usize].is_some()
    }

    /// The constant bound to `v`'s class, if any.
    pub fn value_of(&mut self, v: Var) -> Option<Value> {
        let r = self.find(v);
        self.binding[r.0 as usize].clone()
    }

    /// Resolve a term: constants stay; variables become their class
    /// constant if bound, otherwise their representative variable.
    pub fn resolve(&mut self, term: &Term) -> Term {
        match term {
            Term::Const(c) => Term::Const(c.clone()),
            Term::Var(v) => {
                let r = self.find(*v);
                match &self.binding[r.0 as usize] {
                    Some(c) => Term::Const(c.clone()),
                    None => Term::Var(r),
                }
            }
        }
    }

    /// Apply the substitution to every term of an atom.
    pub fn apply(&mut self, atom: &Atom) -> Atom {
        Atom::new(
            atom.relation.clone(),
            atom.terms.iter().map(|t| self.resolve(t)).collect(),
        )
    }

    /// Bind variable `v` to constant `c`.
    pub fn bind(&mut self, v: Var, c: Value) -> Result<(), UnifyError> {
        let r = self.find(v);
        match &self.binding[r.0 as usize] {
            Some(existing) if existing != &c => Err(UnifyError::ConstantConflict {
                left: existing.clone(),
                right: c,
            }),
            Some(_) => Ok(()),
            None => {
                self.binding[r.0 as usize] = Some(c);
                Ok(())
            }
        }
    }

    /// Merge the classes of `a` and `b`.
    pub fn union(&mut self, a: Var, b: Var) -> Result<(), UnifyError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        // Check binding compatibility before merging.
        let merged = match (
            self.binding[ra.0 as usize].take(),
            self.binding[rb.0 as usize].take(),
        ) {
            (Some(x), Some(y)) if x != y => {
                // Restore and fail.
                self.binding[ra.0 as usize] = Some(x.clone());
                self.binding[rb.0 as usize] = Some(y.clone());
                return Err(UnifyError::ConstantConflict { left: x, right: y });
            }
            (Some(x), _) => Some(x),
            (_, y) => y,
        };
        // Union by rank.
        let (hi, lo) = if self.rank[ra.0 as usize] >= self.rank[rb.0 as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo.0 as usize] = hi.0;
        if self.rank[hi.0 as usize] == self.rank[lo.0 as usize] {
            self.rank[hi.0 as usize] += 1;
        }
        self.binding[hi.0 as usize] = merged;
        Ok(())
    }

    /// Unify two terms.
    pub fn unify_terms(&mut self, a: &Term, b: &Term) -> Result<(), UnifyError> {
        match (a, b) {
            (Term::Const(x), Term::Const(y)) => {
                if x == y {
                    Ok(())
                } else {
                    Err(UnifyError::ConstantConflict {
                        left: x.clone(),
                        right: y.clone(),
                    })
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                self.bind(*v, c.clone())
            }
            (Term::Var(v), Term::Var(w)) => self.union(*v, *w),
        }
    }

    /// Unify two atoms positionally (the MGU step of the paper's
    /// algorithms). Both atoms must be over the same relation with equal
    /// arity.
    ///
    /// On failure the substitution may be left partially updated; callers
    /// that need transactional behaviour clone first (component-level
    /// unification in the SCC algorithm does exactly that).
    pub fn unify_atoms(&mut self, a: &Atom, b: &Atom) -> Result<(), UnifyError> {
        if a.relation != b.relation {
            return Err(UnifyError::RelationMismatch {
                left: a.relation.to_string(),
                right: b.relation.to_string(),
            });
        }
        if a.arity() != b.arity() {
            return Err(UnifyError::ArityMismatch {
                relation: a.relation.to_string(),
                left: a.arity(),
                right: b.arity(),
            });
        }
        for (ta, tb) in a.terms.iter().zip(&b.terms) {
            self.unify_terms(ta, tb)?;
        }
        Ok(())
    }

    /// Bind, logging the class representative into `log` when the class
    /// goes from unbound to bound (cached atoms showing that variable are
    /// now stale).
    pub fn bind_logged(&mut self, v: Var, c: Value, log: &mut DeltaLog) -> Result<(), UnifyError> {
        let r = self.find(v);
        let was_unbound = self.binding[r.0 as usize].is_none();
        self.bind(r, c)?;
        if was_unbound {
            log.dirty.push(r);
        }
        Ok(())
    }

    /// Merge the classes of `keep` and `other`, making `keep`'s current
    /// representative the representative of the merged class regardless
    /// of rank. The differential closure evaluation uses this to keep
    /// the representatives that cached closure fragments were rewritten
    /// under: the dethroned representative (and, if the merge imports a
    /// binding onto a previously unbound winner, the winner itself) is
    /// logged into `log` so stale fragments can be found and repaired.
    pub fn union_keeping(
        &mut self,
        keep: Var,
        other: Var,
        log: &mut DeltaLog,
    ) -> Result<(), UnifyError> {
        let rk = self.find(keep);
        let ro = self.find(other);
        if rk == ro {
            return Ok(());
        }
        let merged = match (
            self.binding[rk.0 as usize].take(),
            self.binding[ro.0 as usize].take(),
        ) {
            (Some(x), Some(y)) if x != y => {
                self.binding[rk.0 as usize] = Some(x.clone());
                self.binding[ro.0 as usize] = Some(y.clone());
                return Err(UnifyError::ConstantConflict { left: x, right: y });
            }
            (Some(x), _) => Some(x),
            (None, y) => {
                if y.is_some() {
                    // The winner was unbound and inherits a constant:
                    // fragments still showing `rk` as a variable are stale.
                    log.dirty.push(rk);
                }
                y
            }
        };
        self.parent[ro.0 as usize] = rk.0;
        if self.rank[rk.0 as usize] == self.rank[ro.0 as usize] {
            self.rank[rk.0 as usize] += 1;
        }
        self.binding[rk.0 as usize] = merged;
        log.dirty.push(ro);
        Ok(())
    }

    /// Unify a postcondition term against a head term, preferring the
    /// head side's representative on variable–variable merges (the head
    /// belongs to an already-memoized closure whose cached fragments
    /// were rewritten under its representative; the postcondition side
    /// is fresh). Mutations that can invalidate cached fragments are
    /// logged.
    pub fn unify_terms_directed(
        &mut self,
        post: &Term,
        head: &Term,
        log: &mut DeltaLog,
    ) -> Result<(), UnifyError> {
        match (post, head) {
            (Term::Const(x), Term::Const(y)) => {
                if x == y {
                    Ok(())
                } else {
                    Err(UnifyError::ConstantConflict {
                        left: x.clone(),
                        right: y.clone(),
                    })
                }
            }
            (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                self.bind_logged(*v, c.clone(), log)
            }
            (Term::Var(p), Term::Var(h)) => self.union_keeping(*h, *p, log),
        }
    }

    /// [`Substitution::unify_atoms`] with the head-preferring,
    /// fragment-dirt-logging term unification of
    /// [`Substitution::unify_terms_directed`].
    pub fn unify_atoms_directed(
        &mut self,
        post: &Atom,
        head: &Atom,
        log: &mut DeltaLog,
    ) -> Result<(), UnifyError> {
        if post.relation != head.relation {
            return Err(UnifyError::RelationMismatch {
                left: post.relation.to_string(),
                right: head.relation.to_string(),
            });
        }
        if post.arity() != head.arity() {
            return Err(UnifyError::ArityMismatch {
                relation: post.relation.to_string(),
                left: post.arity(),
                right: head.arity(),
            });
        }
        for (tp, th) in post.terms.iter().zip(&head.terms) {
            self.unify_terms_directed(tp, th, log)?;
        }
        Ok(())
    }

    /// Fold every equivalence and binding of `other` into `self`:
    /// afterwards `self` entails the union of both constraint sets.
    /// Fails with the usual [`UnifyError::ConstantConflict`] exactly
    /// when that union is inconsistent — the same verdict a from-scratch
    /// unification of the combined constraints would reach. Used when a
    /// closure has several memoized successors: one memo is cloned as
    /// the base, the others absorbed. O(|vars|) bookkeeping.
    pub fn absorb(&mut self, other: &Substitution) -> Result<(), UnifyError> {
        debug_assert_eq!(self.n_vars(), other.n_vars());
        for v in 0..other.parent.len() as u32 {
            let r = other.find_immutable(Var(v));
            if r.0 != v {
                self.union(Var(v), r)?;
            }
        }
        for (v, b) in other.binding.iter().enumerate() {
            if let Some(c) = b {
                self.bind(Var(v as u32), c.clone())?;
            }
        }
        Ok(())
    }
}

/// Mutation log of a delta unification pass: representatives whose class
/// identity or binding changed, i.e. variables that may appear inside
/// memoized closure fragments that are now stale. An empty log proves
/// every cached fragment is still exact and the validation scan can be
/// skipped entirely — the common case on chain-shaped condensations,
/// where each component adds constraints only over fresh variables.
#[derive(Debug, Default)]
pub struct DeltaLog {
    /// Representatives dethroned or newly bound during the delta pass.
    pub dirty: Vec<Var>,
}

impl DeltaLog {
    /// Whether no cached fragment can have gone stale.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Syntactic unifiability test used to build coordination graphs
/// (Section 2.3): two atoms are unifiable if they are over the same
/// relation (with the same arity) and no position has two distinct
/// constants. This is a *stateless* check — it ignores any existing
/// substitution context, exactly as in the paper's definition.
pub fn atoms_unifiable(a: &Atom, b: &Atom) -> bool {
    a.relation == b.relation
        && a.arity() == b.arity()
        && a.terms.iter().zip(&b.terms).all(|(x, y)| match (x, y) {
            (Term::Const(cx), Term::Const(cy)) => cx == cy,
            _ => true,
        })
}

/// Counts syntactic [`atoms_unifiable`] tests, so the candidate
/// enumeration of graph construction, the safety check and preprocessing
/// can *prove* it is near-linear: with the shared
/// [`coord_graph::index`] layer the count grows as O(n·k) in the number
/// of atoms (`k` = index bucket width), where the naive all-pairs sweep
/// performs Θ(posts × heads) tests. The counter is plain owned state —
/// no globals, no atomics — so concurrent runs never bleed into each
/// other's figures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnifyCounter {
    calls: u64,
}

impl UnifyCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        UnifyCounter::default()
    }

    /// [`atoms_unifiable`], counted.
    pub fn check(&mut self, a: &Atom, b: &Atom) -> bool {
        self.calls += 1;
        atoms_unifiable(a, b)
    }

    /// Number of unifiability tests performed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Fold another counter's tally into this one.
    pub fn absorb(&mut self, other: UnifyCounter) {
        self.calls += other.calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, terms: Vec<Term>) -> Atom {
        Atom::new(rel, terms)
    }

    #[test]
    fn paper_unifiability_examples() {
        // R(C, x1) unifies with R(C, y1); R(C, x1) does not unify with
        // R(G, y1). (Section 2.3.)
        let c_x1 = atom("R", vec![Term::constant("C"), Term::var(0)]);
        let c_y1 = atom("R", vec![Term::constant("C"), Term::var(1)]);
        let g_y1 = atom("R", vec![Term::constant("G"), Term::var(1)]);
        assert!(atoms_unifiable(&c_x1, &c_y1));
        assert!(!atoms_unifiable(&c_x1, &g_y1));
    }

    #[test]
    fn unifiable_ignores_variable_positions() {
        let a = atom("R", vec![Term::var(0), Term::constant(1i64)]);
        let b = atom("R", vec![Term::constant("u"), Term::var(5)]);
        assert!(atoms_unifiable(&a, &b));
    }

    #[test]
    fn different_relations_or_arity_not_unifiable() {
        let a = atom("R", vec![Term::var(0)]);
        let b = atom("Q", vec![Term::var(0)]);
        assert!(!atoms_unifiable(&a, &b));
        let c = atom("R", vec![Term::var(0), Term::var(1)]);
        assert!(!atoms_unifiable(&a, &c));
    }

    #[test]
    fn union_and_find() {
        let mut s = Substitution::identity(4);
        s.union(Var(0), Var(1)).unwrap();
        s.union(Var(2), Var(3)).unwrap();
        assert_eq!(s.find(Var(0)), s.find(Var(1)));
        assert_ne!(s.find(Var(0)), s.find(Var(2)));
        s.union(Var(1), Var(2)).unwrap();
        assert_eq!(s.find(Var(0)), s.find(Var(3)));
    }

    #[test]
    fn bind_propagates_through_classes() {
        let mut s = Substitution::identity(3);
        s.union(Var(0), Var(1)).unwrap();
        s.bind(Var(0), Value::int(7)).unwrap();
        assert_eq!(s.value_of(Var(1)), Some(Value::int(7)));
        // Joining an unbound class keeps the binding.
        s.union(Var(2), Var(1)).unwrap();
        assert_eq!(s.value_of(Var(2)), Some(Value::int(7)));
    }

    #[test]
    fn conflicting_bindings_fail() {
        let mut s = Substitution::identity(2);
        s.bind(Var(0), Value::int(1)).unwrap();
        s.bind(Var(1), Value::int(2)).unwrap();
        assert!(s.union(Var(0), Var(1)).is_err());
        // The failed union must not corrupt bindings.
        assert_eq!(s.value_of(Var(0)), Some(Value::int(1)));
        assert_eq!(s.value_of(Var(1)), Some(Value::int(2)));
    }

    #[test]
    fn rebind_same_value_is_ok() {
        let mut s = Substitution::identity(1);
        s.bind(Var(0), Value::str("a")).unwrap();
        s.bind(Var(0), Value::str("a")).unwrap();
        assert!(s.bind(Var(0), Value::str("b")).is_err());
    }

    #[test]
    fn unify_atoms_mgu() {
        // R(C, x) ≐ R(y, 5) ⇒ y ↦ C, x ↦ 5.
        let mut s = Substitution::identity(2);
        let a = atom("R", vec![Term::constant("C"), Term::var(0)]);
        let b = atom("R", vec![Term::var(1), Term::constant(5i64)]);
        s.unify_atoms(&a, &b).unwrap();
        assert_eq!(s.value_of(Var(0)), Some(Value::int(5)));
        assert_eq!(s.value_of(Var(1)), Some(Value::str("C")));
    }

    #[test]
    fn unify_atoms_relation_mismatch() {
        let mut s = Substitution::identity(1);
        let a = atom("R", vec![Term::var(0)]);
        let b = atom("Q", vec![Term::var(0)]);
        assert!(matches!(
            s.unify_atoms(&a, &b),
            Err(UnifyError::RelationMismatch { .. })
        ));
    }

    #[test]
    fn resolve_and_apply() {
        let mut s = Substitution::identity(3);
        s.union(Var(0), Var(1)).unwrap();
        s.bind(Var(2), Value::str("Paris")).unwrap();
        let a = atom("F", vec![Term::var(0), Term::var(1), Term::var(2)]);
        let applied = s.apply(&a);
        // Vars 0 and 1 resolve to the same representative; var 2 to Paris.
        assert_eq!(applied.terms[0], applied.terms[1]);
        assert_eq!(applied.terms[2], Term::Const(Value::str("Paris")));
    }

    #[test]
    fn union_keeping_preserves_the_requested_representative() {
        let mut s = Substitution::identity(4);
        // Build a class around var 0 with higher rank.
        s.union(Var(0), Var(1)).unwrap();
        s.union(Var(0), Var(2)).unwrap();
        let mut log = DeltaLog::default();
        // Keep var 3's rep even though var 0's class outranks it.
        s.union_keeping(Var(3), Var(0), &mut log).unwrap();
        assert_eq!(s.find(Var(0)), Var(3));
        assert_eq!(s.find(Var(1)), Var(3));
        // The dethroned representative is logged.
        assert_eq!(log.dirty, vec![Var(0)]);
        assert!(!log.is_clean());
    }

    #[test]
    fn union_keeping_logs_winner_when_it_inherits_a_binding() {
        let mut s = Substitution::identity(2);
        s.bind(Var(1), Value::int(9)).unwrap();
        let mut log = DeltaLog::default();
        s.union_keeping(Var(0), Var(1), &mut log).unwrap();
        // Var 0 stayed representative but went from unbound to bound, so
        // both it and the dethroned rep are dirty.
        assert_eq!(s.value_of(Var(0)), Some(Value::int(9)));
        assert!(log.dirty.contains(&Var(0)));
        assert!(log.dirty.contains(&Var(1)));
    }

    #[test]
    fn union_keeping_detects_conflicts_without_corruption() {
        let mut s = Substitution::identity(2);
        s.bind(Var(0), Value::int(1)).unwrap();
        s.bind(Var(1), Value::int(2)).unwrap();
        let mut log = DeltaLog::default();
        assert!(s.union_keeping(Var(0), Var(1), &mut log).is_err());
        assert_eq!(s.value_of(Var(0)), Some(Value::int(1)));
        assert_eq!(s.value_of(Var(1)), Some(Value::int(2)));
    }

    #[test]
    fn directed_unification_reaches_the_same_mgu() {
        let post = atom("R", vec![Term::constant("C"), Term::var(0)]);
        let head = atom("R", vec![Term::var(1), Term::constant(5i64)]);
        let mut plain = Substitution::identity(2);
        plain.unify_atoms(&post, &head).unwrap();
        let mut directed = Substitution::identity(2);
        let mut log = DeltaLog::default();
        directed
            .unify_atoms_directed(&post, &head, &mut log)
            .unwrap();
        for v in 0..2 {
            assert_eq!(plain.value_of(Var(v)), directed.value_of(Var(v)));
        }
    }

    #[test]
    fn absorb_entails_the_union_of_constraints() {
        // other: {0 ~ 1 ↦ 7}; self: {1 ~ 2}. After absorb, all three
        // share a class bound to 7.
        let mut other = Substitution::identity(3);
        other.union(Var(0), Var(1)).unwrap();
        other.bind(Var(0), Value::int(7)).unwrap();
        let mut s = Substitution::identity(3);
        s.union(Var(1), Var(2)).unwrap();
        s.absorb(&other).unwrap();
        assert_eq!(s.find(Var(0)), s.find(Var(2)));
        assert_eq!(s.value_of(Var(2)), Some(Value::int(7)));
        // Conflicting absorb fails like from-scratch unification would.
        let mut conflicted = Substitution::identity(3);
        conflicted.bind(Var(1), Value::int(8)).unwrap();
        assert!(conflicted.absorb(&other).is_err());
    }

    #[test]
    fn transitive_constant_conflict_detected() {
        // x ≐ 1, y ≐ 2, then x ≐ y must fail through the classes.
        let mut s = Substitution::identity(2);
        let a1 = atom("R", vec![Term::var(0), Term::var(1)]);
        let a2 = atom("R", vec![Term::constant(1i64), Term::constant(2i64)]);
        s.unify_atoms(&a1, &a2).unwrap();
        let a3 = atom("R", vec![Term::var(0), Term::var(0)]);
        let a4 = atom("R", vec![Term::var(1), Term::var(1)]);
        assert!(s.unify_atoms(&a3, &a4).is_err());
    }
}
