//! The **SCC Coordination Algorithm** (Section 4): finding a coordinating
//! set for *safe* query sets without requiring *uniqueness*.
//!
//! Key observation: for a safe set, if a query `q` belongs to a
//! coordinating set `S`, all of `q`'s successors in the coordination graph
//! must be in `S` too — so every strongly connected component is either
//! wholly inside or wholly outside `S`. The algorithm therefore:
//!
//! 1. prunes queries whose postconditions cannot be matched by any head
//!    (the implementation-section preprocessing step),
//! 2. contracts the coordination graph into its components DAG `G'`,
//! 3. walks `G'` in reverse topological order; for each component it
//!    unifies the component's queries with the combined queries of its
//!    successors and issues **one** conjunctive query to the database,
//! 4. among the successful closures `R(q)` returns the one preferred by
//!    the configured [`Selector`] (maximum size by default — the paper's
//!    guarantee: a maximum-size set among `{R(q) | q ∈ Q}`).
//!
//! At most `|Q|` database queries are issued; the graph work is at most
//! quadratic in `|Q|` (Section 4, "Running Time").

use crate::bruteforce;
use crate::combined::{ground_members, unify_members};
use crate::error::CoordError;
use crate::graphs::{coordination_graph, safety_violations};
use crate::instance::QuerySet;
use crate::outcome::FoundSet;
use crate::query::{EntangledQuery, QueryId};
use crate::selector::{MaxSize, Selector};
use crate::semantics::Grounding;
use crate::unify::Substitution;
use coord_db::Database;
use coord_graph::{condensation, Condensation, DiGraph, NodeId};
use std::collections::BTreeSet;

/// Statistics gathered during a run (mirrors the measurements of
/// Figures 4–6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SccStats {
    /// Queries removed by preprocessing (unmatchable postconditions).
    pub removed: usize,
    /// Edges of the (collapsed) coordination graph.
    pub graph_edges: usize,
    /// Strongly connected components.
    pub components: usize,
    /// Conjunctive queries issued to the database (≤ components ≤ |Q|).
    pub db_queries: usize,
    /// Candidate coordinating sets discovered.
    pub candidates: usize,
}

/// Everything the algorithm computes before touching the database:
/// validation, safety check, preprocessing, coordination graph and its
/// condensation. This is exactly the work measured by Figure 6 ("graph
/// processing time").
#[derive(Debug)]
pub struct Preprocessed {
    /// The query set with its global variable space.
    pub qs: QuerySet,
    /// Queries removed because some postcondition matches no head.
    pub removed: Vec<QueryId>,
    /// The collapsed coordination graph over all queries (removed queries
    /// keep their nodes but contribute no usable closure).
    pub graph: DiGraph<QueryId>,
    /// Condensation of the coordination graph. Component ids are in
    /// reverse topological order (successors have smaller ids).
    pub cond: Condensation,
}

/// Run validation, the safety check, preprocessing and graph construction
/// (steps 1–2 of the algorithm; no database queries are issued beyond
/// schema validation).
/// Check safety (Definition 2), reporting the first violation as the
/// error the coordination algorithms raise.
fn check_safety(qs: &QuerySet) -> Result<(), CoordError> {
    if let Some(v) = safety_violations(qs).first() {
        let q = qs.query(v.query);
        return Err(CoordError::UnsafeSet {
            query: q.name().to_string(),
            postcondition: format!("{:?}", q.postconditions()[v.post_idx]),
        });
    }
    Ok(())
}

pub fn preprocess(db: &Database, queries: &[EntangledQuery]) -> Result<Preprocessed, CoordError> {
    let qs = QuerySet::new(queries.to_vec());
    qs.validate(db)?;

    // Safety check (Definition 2). The algorithm's guarantees require it.
    check_safety(&qs)?;

    // Preprocessing: iteratively remove queries that have a postcondition
    // no remaining head can satisfy.
    let index = crate::graphs::HeadIndex::build(&qs);
    let mut active = vec![true; qs.len()];
    loop {
        let mut changed = false;
        for src in qs.ids() {
            if !active[src.index()] {
                continue;
            }
            let all_matched = qs.query(src).postconditions().iter().all(|p| {
                index.candidates(p).any(|(dst, hi)| {
                    active[dst.index()]
                        && crate::unify::atoms_unifiable(p, &qs.query(dst).heads()[hi])
                })
            });
            if !all_matched {
                active[src.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let removed: Vec<QueryId> = qs.ids().filter(|q| !active[q.index()]).collect();

    // Coordination graph over the active queries; removed queries keep
    // their (isolated) nodes so QueryId == NodeId everywhere.
    let full = coordination_graph(&qs);
    let mut graph: DiGraph<QueryId> = DiGraph::with_capacity(qs.len(), full.edge_count());
    for id in qs.ids() {
        graph.add_node(id);
    }
    for e in full.edge_ids() {
        let (u, v) = full.endpoints(e);
        if active[u.index()] && active[v.index()] {
            graph.add_edge(u, v, ());
        }
    }

    let cond = condensation(&graph);
    Ok(Preprocessed {
        qs,
        removed,
        graph,
        cond,
    })
}

/// Outcome of the SCC Coordination Algorithm.
#[derive(Debug)]
pub struct SccOutcome {
    /// The query set (for mapping ids back to names).
    pub qs: QuerySet,
    /// All candidate coordinating sets (one per successfully grounded
    /// component closure `R(q)`).
    pub found: Vec<FoundSet>,
    /// Index of the selector's choice within `found`.
    best: Option<usize>,
    /// Run statistics.
    pub stats: SccStats,
}

impl SccOutcome {
    /// The selected coordinating set, if any closure coordinated.
    pub fn best(&self) -> Option<&FoundSet> {
        self.best.map(|i| &self.found[i])
    }

    /// Names of the member queries of the best set.
    pub fn best_names(&self) -> Vec<&str> {
        self.best()
            .map(|f| f.queries.iter().map(|&q| self.qs.query(q).name()).collect())
            .unwrap_or_default()
    }
}

/// The SCC Coordination Algorithm, parameterized by a selection criterion.
pub struct SccCoordinator<'a> {
    db: &'a Database,
    selector: Box<dyn Selector + 'a>,
    bruteforce_cutoff: usize,
}

impl<'a> SccCoordinator<'a> {
    /// A coordinator with the paper's default maximum-size selection.
    pub fn new(db: &'a Database) -> Self {
        SccCoordinator {
            db,
            selector: Box::new(MaxSize),
            bruteforce_cutoff: 0,
        }
    }

    /// Override the selection criterion.
    pub fn with_selector(db: &'a Database, selector: impl Selector + 'a) -> Self {
        SccCoordinator {
            db,
            selector: Box::new(selector),
            bruteforce_cutoff: 0,
        }
    }

    /// Enable the small-instance fast path: [`SccCoordinator::run`]
    /// delegates to [`bruteforce::max_coordinating_set`] for instances of
    /// at most `cutoff` queries, where the exhaustive search's constant
    /// factor beats graph construction + per-component database queries
    /// (the `ablation_scc_vs_bruteforce` bench: 12µs vs 30µs at n = 6).
    /// The online engine evaluates mostly tiny components and runs with
    /// this enabled.
    ///
    /// The default is 0 (always the paper's algorithm): the fast path
    /// returns the same maximum-size coordinating set (or the same
    /// `UnsafeSet` error), but reports only that one candidate in
    /// [`SccOutcome::found`] and leaves the graph-shaped fields of
    /// [`SccStats`] at zero — and a global maximum can exceed the
    /// maximum closure `R(q)` on non-unique instances, so callers
    /// pinning the paper's exact per-closure behavior must opt in.
    ///
    /// # Panics
    /// Panics if `cutoff` exceeds [`bruteforce::MAX_QUERIES`] — the
    /// exhaustive search refuses larger instances, so a bigger cutoff
    /// could never be honored.
    pub fn with_bruteforce_cutoff(mut self, cutoff: usize) -> Self {
        assert!(
            cutoff <= bruteforce::MAX_QUERIES,
            "bruteforce cutoff {cutoff} exceeds the exhaustive-search cap"
        );
        self.bruteforce_cutoff = cutoff;
        self
    }

    /// Run the full algorithm on `queries`.
    pub fn run(&self, queries: &[EntangledQuery]) -> Result<SccOutcome, CoordError> {
        if !queries.is_empty() && queries.len() <= self.bruteforce_cutoff {
            return self.run_small(queries);
        }
        let pre = preprocess(self.db, queries)?;
        self.run_preprocessed(pre)
    }

    /// The small-instance fast path: validation and the safety check as
    /// usual (so unsafe sets raise the same error), then one exhaustive
    /// search instead of graph construction plus per-component database
    /// queries.
    fn run_small(&self, queries: &[EntangledQuery]) -> Result<SccOutcome, CoordError> {
        let qs = QuerySet::new(queries.to_vec());
        qs.validate(self.db)?;
        check_safety(&qs)?;

        let result = bruteforce::max_coordinating_set(self.db, queries)?;
        // One grounding = one conjunctive query to the database. Counted
        // from the search's own tally, not the shared `Database` stats —
        // those are global and would absorb concurrent callers' queries.
        let db_queries = result.matchings_tried as usize;

        let found: Vec<FoundSet> = result.best.into_iter().collect();
        let best = self.selector.choose(&found);
        let stats = SccStats {
            db_queries,
            candidates: found.len(),
            ..SccStats::default()
        };
        Ok(SccOutcome {
            qs,
            found,
            best,
            stats,
        })
    }

    /// Run the database phase on a preprocessed instance.
    pub fn run_preprocessed(&self, pre: Preprocessed) -> Result<SccOutcome, CoordError> {
        let Preprocessed {
            qs,
            removed,
            graph,
            cond,
        } = pre;
        let n_comp = cond.len();
        let removed_set: Vec<bool> = {
            let mut v = vec![false; qs.len()];
            for r in &removed {
                v[r.index()] = true;
            }
            v
        };

        let mut stats = SccStats {
            removed: removed.len(),
            graph_edges: graph.edge_count(),
            components: n_comp,
            ..SccStats::default()
        };

        // One head index shared by every component's unification pass.
        let head_index = crate::graphs::HeadIndex::build(&qs);

        // Per-component state: whether it failed, and the set of component
        // ids in its closure (itself + closures of successors). Components
        // are processed in id order, which is reverse topological order,
        // so successors are always ready.
        let mut failed = vec![false; n_comp];
        let mut closures: Vec<BTreeSet<usize>> = Vec::with_capacity(n_comp);
        let mut found: Vec<FoundSet> = Vec::new();

        for c in 0..n_comp {
            // Removed queries cannot participate.
            let members_here = cond.members(c);
            if members_here.iter().any(|n| removed_set[n.index()]) {
                failed[c] = true;
                closures.push(BTreeSet::new());
                continue;
            }

            // Merge successor closures; fail if any successor failed.
            let mut closure: BTreeSet<usize> = BTreeSet::new();
            closure.insert(c);
            let mut ok = true;
            for succ in cond.dag.successors(NodeId(c)) {
                if failed[succ.index()] {
                    ok = false;
                    break;
                }
                closure.extend(closures[succ.index()].iter().copied());
            }
            if !ok {
                failed[c] = true;
                closures.push(BTreeSet::new());
                continue;
            }

            // Collect the member queries of the whole closure R(q).
            let mut member_queries: Vec<QueryId> = closure
                .iter()
                .flat_map(|&ci| cond.members(ci).iter().map(|n| QueryId(n.index())))
                .collect();
            member_queries.sort_unstable();

            // Unify the closure: every postcondition with its unique head.
            let subst = Substitution::identity(qs.total_vars());
            let mut subst = match unify_members(&qs, &member_queries, subst, &head_index) {
                Ok(s) => s,
                Err(_) => {
                    failed[c] = true;
                    closures.push(BTreeSet::new());
                    continue;
                }
            };

            // One conjunctive query to the database for this component.
            stats.db_queries += 1;
            match ground_members(self.db, &qs, &member_queries, &mut subst)? {
                Some(grounding) => {
                    found.push(FoundSet {
                        queries: member_queries,
                        grounding,
                    });
                    closures.push(closure);
                }
                None => {
                    failed[c] = true;
                    closures.push(BTreeSet::new());
                }
            }
        }

        stats.candidates = found.len();
        let best = self.selector.choose(&found);
        Ok(SccOutcome {
            qs,
            found,
            best,
            stats,
        })
    }
}

/// Convenience: run the SCC Coordination Algorithm with default selection
/// and return only the best coordinating set.
pub fn scc_coordinate(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<Option<(Vec<QueryId>, Grounding)>, CoordError> {
    let outcome = SccCoordinator::new(db).run(queries)?;
    Ok(outcome
        .best()
        .map(|f| (f.queries.clone(), f.grounding.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::Value;

    /// Database for the flight-hotel example: Paris has flight+hotel,
    /// Athens has flight+hotel, Madrid has a flight but no hotel.
    fn fh_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["id", "dest"]).unwrap();
        db.create_table("H", &["id", "loc"]).unwrap();
        for (id, d) in [(1, "Paris"), (2, "Athens"), (3, "Madrid")] {
            db.insert("F", vec![Value::int(id), Value::str(d)]).unwrap();
        }
        for (id, l) in [(10, "Paris"), (11, "Athens")] {
            db.insert("H", vec![Value::int(id), Value::str(l)]).unwrap();
        }
        db
    }

    fn fh_queries() -> Vec<EntangledQuery> {
        crate::graphs::tests::flight_hotel_queries()
            .queries()
            .to_vec()
    }

    #[test]
    fn flight_hotel_components() {
        let db = fh_db();
        let pre = preprocess(&db, &fh_queries()).unwrap();
        // SCCs: {qC, qG}, {qJ}, {qW} (Section 4).
        assert_eq!(pre.cond.len(), 3);
        assert!(pre.removed.is_empty());
        // {qC, qG} is the sink component: id 0 in reverse topo order.
        let comp0: Vec<usize> = pre.cond.members(0).iter().map(|n| n.index()).collect();
        let mut c0 = comp0.clone();
        c0.sort_unstable();
        assert_eq!(c0, vec![0, 1]);
    }

    #[test]
    fn flight_hotel_best_is_chris_guy_jonny() {
        // Chris+Guy coordinate on Paris. Jonny requires Athens for
        // himself while flying *with* Chris and Guy — grounding forces one
        // flight to go to both Paris and Athens, so R(qJ) fails; so does
        // R(qW) (it contains qJ via Q(J,·)... actually qW needs qJ's
        // hotel and qC's flight). The best coordinating set is {qC, qG}.
        let db = fh_db();
        let out = SccCoordinator::new(&db).run(&fh_queries()).unwrap();
        let names = out.best_names();
        assert_eq!(names, vec!["qC", "qG"]);
        // One DB query per component at most.
        assert!(out.stats.db_queries <= out.stats.components);
        // Verify against Definition 1.
        let best = out.best().unwrap();
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn list_structure_finds_whole_chain() {
        // q0 → q1 → q2, last query free: the whole list coordinates when
        // the database has a satisfying tuple (Figure 4 workload shape).
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(7)]).unwrap();
        let mk = |i: usize, next: Option<usize>| {
            let mut b = QueryBuilder::new(format!("q{i}"));
            if let Some(n) = next {
                b = b.postcondition("R", |a| a.constant(format!("u{n}")).var("x"));
            }
            b.head("R", |a| a.constant(format!("u{i}")).var("x"))
                .body("T", |a| a.var("x"))
                .build()
                .unwrap()
        };
        let queries = vec![mk(0, Some(1)), mk(1, Some(2)), mk(2, None)];
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        // Candidates: {q2}, {q1,q2}, {q0,q1,q2} — non-unique structure.
        assert_eq!(out.found.len(), 3);
        assert_eq!(out.best().unwrap().len(), 3);
        assert_eq!(out.stats.db_queries, 3);
        let best = out.best().unwrap();
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn failure_propagates_to_predecessors() {
        // q0 needs q1; q1's body is unsatisfiable ⇒ both fail, but q2
        // (independent) succeeds.
        let mut db = Database::new();
        db.create_table("T", &["id", "kind"]).unwrap();
        db.insert("T", vec![Value::int(1), Value::str("good")])
            .unwrap();
        let q0 = QueryBuilder::new("q0")
            .postcondition("R", |a| a.constant("u1").var("x"))
            .head("R", |a| a.constant("u0").var("x"))
            .body("T", |a| a.var("x").constant("good"))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("q1")
            .head("R", |a| a.constant("u1").var("y"))
            .body("T", |a| a.var("y").constant("missing"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("u2").var("z"))
            .body("T", |a| a.var("z").constant("good"))
            .build()
            .unwrap();
        let out = SccCoordinator::new(&db).run(&[q0, q1, q2]).unwrap();
        assert_eq!(out.best_names(), vec!["q2"]);
        assert_eq!(out.found.len(), 1);
    }

    #[test]
    fn preprocessing_removes_unmatchable_postconditions() {
        // q0 requires R(ghost, ·) which nobody produces; q1 requires q0.
        // Both are removed; q2 survives.
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let q0 = QueryBuilder::new("q0")
            .postcondition("R", |a| a.constant("ghost").var("x"))
            .head("R", |a| a.constant("u0").var("x"))
            .body("T", |a| a.var("x"))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("u0").var("y"))
            .head("R", |a| a.constant("u1").var("y"))
            .body("T", |a| a.var("y"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("u2").var("z"))
            .body("T", |a| a.var("z"))
            .build()
            .unwrap();
        let pre = preprocess(&db, &[q0, q1, q2]).unwrap();
        assert_eq!(pre.removed.len(), 2);
        let out = SccCoordinator::new(&db).run_preprocessed(pre).unwrap();
        assert_eq!(out.best_names(), vec!["q2"]);
        assert_eq!(out.stats.removed, 2);
    }

    #[test]
    fn unsafe_set_is_rejected() {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        // Two producers of R(u, ·) and one consumer ⇒ unsafe.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("T", |x| x.var("p"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("u").var("q"))
            .body("T", |x| x.var("q"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("T", |x| x.var("r"))
            .build()
            .unwrap();
        let err = SccCoordinator::new(&db).run(&[a, b, c]).unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
    }

    #[test]
    fn db_query_bound_holds() {
        // The number of database queries never exceeds the number of SCCs.
        let db = fh_db();
        db.stats().reset();
        let out = SccCoordinator::new(&db).run(&fh_queries()).unwrap();
        assert!(out.stats.db_queries <= out.stats.components);
        assert_eq!(db.stats().find_one_count() as usize, out.stats.db_queries);
    }

    #[test]
    fn bruteforce_fast_path_matches_full_algorithm_on_chains() {
        // Below the cutoff the fast path must find the same maximum-size
        // set as the paper's algorithm (chains have no size ties and no
        // cross-closure unions, so the global maximum IS the maximum
        // closure).
        let db = pool_db_small();
        for n in 1..=6 {
            let queries: Vec<EntangledQuery> = (0..n)
                .map(|i| {
                    let next = if i + 1 < n { vec![i + 1] } else { vec![] };
                    chain_q(i, &next)
                })
                .collect();
            let slow = SccCoordinator::new(&db).run(&queries).unwrap();
            let fast = SccCoordinator::new(&db)
                .with_bruteforce_cutoff(6)
                .run(&queries)
                .unwrap();
            assert_eq!(
                slow.best_names(),
                fast.best_names(),
                "n = {n}: fast path diverged"
            );
            let best = fast.best().unwrap();
            check_coordinating_set(&db, &fast.qs, &best.queries, &best.grounding).unwrap();
        }
    }

    #[test]
    fn bruteforce_fast_path_rejects_unsafe_sets_identically() {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("T", |x| x.var("p"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("u").var("q"))
            .body("T", |x| x.var("q"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("T", |x| x.var("r"))
            .build()
            .unwrap();
        let err = SccCoordinator::new(&db)
            .with_bruteforce_cutoff(6)
            .run(&[a, b, c])
            .unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
    }

    #[test]
    fn cutoff_leaves_larger_instances_on_the_paper_algorithm() {
        // Above the cutoff the full algorithm runs and reports its usual
        // per-component stats.
        let db = fh_db();
        let out = SccCoordinator::new(&db)
            .with_bruteforce_cutoff(2)
            .run(&fh_queries())
            .unwrap();
        assert_eq!(out.stats.components, 3);
        assert_eq!(out.best_names(), vec!["qC", "qG"]);
    }

    fn pool_db_small() -> Database {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(7)]).unwrap();
        db
    }

    fn chain_q(i: usize, next: &[usize]) -> EntangledQuery {
        let mut b = QueryBuilder::new(format!("q{i}"));
        for &n in next {
            b = b.postcondition("R", |a| a.constant(format!("u{n}")).var("x"));
        }
        b.head("R", |a| a.constant(format!("u{i}")).var("x"))
            .body("T", |a| a.var("x"))
            .build()
            .unwrap()
    }

    #[test]
    fn components_graph_example_from_section_4() {
        // q3+q4 → q1+q2 ← q5+q6: candidates {q1,q2}, {q1..q4}, {q1,q2,q5,q6};
        // the algorithm does NOT check the union of all six.
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let pair = |i: usize, j: usize, dep: Option<usize>| {
            let a_name = format!("q{i}");
            let b_name = format!("q{j}");
            let mut a = QueryBuilder::new(&a_name)
                .postcondition("R", |x| x.constant(format!("u{j}")).var("v"))
                .head("R", |x| x.constant(format!("u{i}")).var("v"))
                .body("T", |x| x.var("v"));
            if let Some(d) = dep {
                a = a.postcondition("R", |x| x.constant(format!("u{d}")).var("v"));
            }
            let b = QueryBuilder::new(&b_name)
                .postcondition("R", |x| x.constant(format!("u{i}")).var("w"))
                .head("R", |x| x.constant(format!("u{j}")).var("w"))
                .body("T", |x| x.var("w"))
                .build()
                .unwrap();
            (a.build().unwrap(), b)
        };
        let (q1, q2) = pair(1, 2, None);
        let (q3, q4) = pair(3, 4, Some(1));
        let (q5, q6) = pair(5, 6, Some(1));
        let out = SccCoordinator::new(&db)
            .run(&[q1, q2, q3, q4, q5, q6])
            .unwrap();
        assert_eq!(out.found.len(), 3);
        let sizes: Vec<usize> = out.found.iter().map(FoundSet::len).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 4, 4]);
        assert_eq!(out.best().unwrap().len(), 4);
    }
}
