//! The **SCC Coordination Algorithm** (Section 4): finding a coordinating
//! set for *safe* query sets without requiring *uniqueness*.
//!
//! Key observation: for a safe set, if a query `q` belongs to a
//! coordinating set `S`, all of `q`'s successors in the coordination graph
//! must be in `S` too — so every strongly connected component is either
//! wholly inside or wholly outside `S`. The algorithm therefore:
//!
//! 1. prunes queries whose postconditions cannot be matched by any head
//!    (the implementation-section preprocessing step),
//! 2. contracts the coordination graph into its components DAG `G'`,
//! 3. walks `G'` in reverse topological order; for each component it
//!    unifies the component's queries with the combined queries of its
//!    successors and issues **one** conjunctive query to the database,
//! 4. among the successful closures `R(q)` returns the one preferred by
//!    the configured [`Selector`] (maximum size by default — the paper's
//!    guarantee: a maximum-size set among `{R(q) | q ∈ Q}`).
//!
//! At most `|Q|` database queries are issued; the graph work is at most
//! quadratic in `|Q|` (Section 4, "Running Time").

use crate::bruteforce;
use crate::combined::ground_assembled;
use crate::differential::{
    bindings_from_grounding, closure_key, delta_unify, digest_query, grounding_from_bindings,
    scratch_closure, CachedVerdict, ClosureCache, ClosureMemo, GroundWork,
};
use crate::error::CoordError;
use crate::graphs::{coordination_graph_counted, safety_violations_counted, HeadIndex};
use crate::instance::QuerySet;
use crate::outcome::FoundSet;
use crate::query::{EntangledQuery, QueryId};
use crate::selector::{MaxSize, Selector};
use crate::semantics::Grounding;
use crate::unify::UnifyCounter;
use coord_db::Database;
use coord_graph::{condensation, Condensation, DiGraph, NodeId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Statistics gathered during a run (mirrors the measurements of
/// Figures 4–6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SccStats {
    /// Queries removed by preprocessing (unmatchable postconditions).
    pub removed: usize,
    /// Edges of the (collapsed) coordination graph.
    pub graph_edges: usize,
    /// Strongly connected components.
    pub components: usize,
    /// Conjunctive queries issued to the database (≤ components ≤ |Q|).
    pub db_queries: usize,
    /// Candidate coordinating sets discovered.
    pub candidates: usize,
    /// Syntactic atom-unifiability tests performed by the safety check,
    /// preprocessing and graph construction. Near-linear in the number
    /// of atoms thanks to the shared head index — the all-pairs sweep
    /// would be Θ(posts × heads) — and asserted against exactly that
    /// bound by the scaling tests and the ablation bench's `--quick`
    /// gate.
    pub unify_calls: u64,
    /// Closure-evaluation operations ([`GroundWork::total`]): MGU
    /// merges, body-atom rewrites and fragment staleness checks. Under
    /// the default differential evaluation this grows ~O(n·Δ) on a list
    /// workload where from-scratch evaluation pays Σ|closure| ≈ n²/2
    /// (gated by the scaling tests and the ablation bench). Zero on the
    /// bruteforce fast path, which never builds closures.
    pub ground_work: u64,
}

/// How component closures are evaluated along the condensation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Evaluation {
    /// Delta joins against memoized successor closures (the default) —
    /// byte-identical results, work proportional to the delta.
    #[default]
    Differential,
    /// Re-unify and re-rewrite every closure from scratch — the
    /// baseline the differential equivalence suite compares against.
    FromScratch,
}

/// Everything the algorithm computes before touching the database:
/// validation, safety check, preprocessing, coordination graph and its
/// condensation. This is exactly the work measured by Figure 6 ("graph
/// processing time").
#[derive(Debug)]
pub struct Preprocessed {
    /// The query set with its global variable space.
    pub qs: QuerySet,
    /// Queries removed because some postcondition matches no head.
    pub removed: Vec<QueryId>,
    /// The collapsed coordination graph over all queries (removed queries
    /// keep their nodes but contribute no usable closure).
    pub graph: DiGraph<QueryId>,
    /// Condensation of the coordination graph. Component ids are in
    /// reverse topological order (successors have smaller ids).
    pub cond: Condensation,
    /// Atom-unifiability tests performed so far (safety check +
    /// preprocessing fixpoint + graph construction) — the candidate-
    /// enumeration cost the head index keeps near-linear.
    pub unify_calls: u64,
}

/// Run validation, the safety check, preprocessing and graph construction
/// (steps 1–2 of the algorithm; no database queries are issued beyond
/// schema validation).
/// Check safety (Definition 2), reporting the first violation as the
/// error the coordination algorithms raise.
fn check_safety(qs: &QuerySet, counter: &mut UnifyCounter) -> Result<(), CoordError> {
    if let Some(v) = safety_violations_counted(qs, counter).first() {
        let q = qs.query(v.query);
        return Err(CoordError::UnsafeSet {
            query: q.name().to_string(),
            postcondition: format!("{:?}", q.postconditions()[v.post_idx]),
        });
    }
    Ok(())
}

pub fn preprocess(db: &Database, queries: &[EntangledQuery]) -> Result<Preprocessed, CoordError> {
    let qs = QuerySet::new(queries.to_vec());
    qs.validate(db)?;

    // Advise storage about the multi-column equality patterns the body
    // atoms will probe (constant positions; variables stay unbound at
    // probe time in the common workloads). Backends with composite
    // indexes materialize them up front instead of paying the adaptive
    // observation window; everyone else ignores the hint.
    for q in queries {
        for atom in q.body() {
            let cols: Vec<usize> = atom
                .terms
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, coord_db::Term::Const(_)))
                .map(|(c, _)| c)
                .collect();
            if cols.len() >= 2 {
                db.advise_pattern(&atom.relation, &cols);
            }
        }
    }

    let mut counter = UnifyCounter::new();

    // Safety check (Definition 2). The algorithm's guarantees require it.
    check_safety(&qs, &mut counter)?;

    // Preprocessing: iteratively remove queries that have a postcondition
    // no remaining head can satisfy.
    let index = HeadIndex::build(&qs);
    let mut active = vec![true; qs.len()];
    let mut cands: Vec<(QueryId, usize)> = Vec::new();
    loop {
        let mut changed = false;
        for src in qs.ids() {
            if !active[src.index()] {
                continue;
            }
            let all_matched = qs.query(src).postconditions().iter().all(|p| {
                cands.clear();
                index.candidates_into(p, &mut cands);
                cands.iter().any(|&(dst, hi)| {
                    active[dst.index()] && counter.check(p, &qs.query(dst).heads()[hi])
                })
            });
            if !all_matched {
                active[src.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let removed: Vec<QueryId> = qs.ids().filter(|q| !active[q.index()]).collect();

    // Coordination graph over the active queries; removed queries keep
    // their (isolated) nodes so QueryId == NodeId everywhere.
    let full = coordination_graph_counted(&qs, &mut counter);
    let mut graph: DiGraph<QueryId> = DiGraph::with_capacity(qs.len(), full.edge_count());
    for id in qs.ids() {
        graph.add_node(id);
    }
    for e in full.edge_ids() {
        let (u, v) = full.endpoints(e);
        if active[u.index()] && active[v.index()] {
            graph.add_edge(u, v, ());
        }
    }

    let cond = condensation(&graph);
    Ok(Preprocessed {
        qs,
        removed,
        graph,
        cond,
        unify_calls: counter.calls(),
    })
}

/// Outcome of the SCC Coordination Algorithm.
#[derive(Debug)]
pub struct SccOutcome {
    /// The query set (for mapping ids back to names).
    pub qs: QuerySet,
    /// All candidate coordinating sets (one per successfully grounded
    /// component closure `R(q)`).
    pub found: Vec<FoundSet>,
    /// Index of the selector's choice within `found`.
    best: Option<usize>,
    /// Run statistics.
    pub stats: SccStats,
}

impl SccOutcome {
    /// The selected coordinating set, if any closure coordinated.
    pub fn best(&self) -> Option<&FoundSet> {
        self.best.map(|i| &self.found[i])
    }

    /// Names of the member queries of the best set.
    pub fn best_names(&self) -> Vec<&str> {
        self.best()
            .map(|f| f.queries.iter().map(|&q| self.qs.query(q).name()).collect())
            .unwrap_or_default()
    }
}

/// The SCC Coordination Algorithm, parameterized by a selection criterion.
pub struct SccCoordinator<'a> {
    db: &'a Database,
    selector: Box<dyn Selector + 'a>,
    bruteforce_cutoff: usize,
    evaluation: Evaluation,
    cache: Option<Arc<ClosureCache>>,
}

impl<'a> SccCoordinator<'a> {
    /// A coordinator with the paper's default maximum-size selection.
    pub fn new(db: &'a Database) -> Self {
        SccCoordinator {
            db,
            selector: Box::new(MaxSize),
            bruteforce_cutoff: 0,
            evaluation: Evaluation::default(),
            cache: None,
        }
    }

    /// Override the selection criterion.
    pub fn with_selector(db: &'a Database, selector: impl Selector + 'a) -> Self {
        SccCoordinator {
            db,
            selector: Box::new(selector),
            bruteforce_cutoff: 0,
            evaluation: Evaluation::default(),
            cache: None,
        }
    }

    /// Disable differential evaluation: every closure is re-unified and
    /// re-rewritten from scratch, and the cross-run cache (if any) is
    /// neither read nor written. The results are byte-identical to the
    /// default — this exists as the baseline the equivalence suite and
    /// the ablation bench compare against.
    pub fn with_from_scratch_evaluation(mut self) -> Self {
        self.evaluation = Evaluation::FromScratch;
        self
    }

    /// Attach a cross-run [`ClosureCache`]: closures whose member
    /// contents were already decided against this database answer from
    /// the cache without unification or a database query. Ignored under
    /// [`Evaluation::FromScratch`].
    pub fn with_closure_cache(mut self, cache: Arc<ClosureCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Enable the small-instance fast path: [`SccCoordinator::run`]
    /// delegates to [`bruteforce::max_coordinating_set`] for instances of
    /// at most `cutoff` queries, where the exhaustive search's constant
    /// factor beats graph construction + per-component database queries
    /// (the `ablation_scc_vs_bruteforce` bench: 12µs vs 30µs at n = 6).
    /// The online engine evaluates mostly tiny components and runs with
    /// this enabled.
    ///
    /// The default is 0 (always the paper's algorithm): the fast path
    /// returns the same maximum-size coordinating set (or the same
    /// `UnsafeSet` error), but reports only that one candidate in
    /// [`SccOutcome::found`] and leaves the graph-shaped fields of
    /// [`SccStats`] at zero — and a global maximum can exceed the
    /// maximum closure `R(q)` on non-unique instances, so callers
    /// pinning the paper's exact per-closure behavior must opt in.
    ///
    /// # Panics
    /// Panics if `cutoff` exceeds [`bruteforce::MAX_QUERIES`] — the
    /// exhaustive search refuses larger instances, so a bigger cutoff
    /// could never be honored.
    pub fn with_bruteforce_cutoff(mut self, cutoff: usize) -> Self {
        assert!(
            cutoff <= bruteforce::MAX_QUERIES,
            "bruteforce cutoff {cutoff} exceeds the exhaustive-search cap"
        );
        self.bruteforce_cutoff = cutoff;
        self
    }

    /// Run the full algorithm on `queries`.
    pub fn run(&self, queries: &[EntangledQuery]) -> Result<SccOutcome, CoordError> {
        if !queries.is_empty() && queries.len() <= self.bruteforce_cutoff {
            return self.run_small(queries);
        }
        let pre = preprocess(self.db, queries)?;
        self.run_preprocessed(pre)
    }

    /// The small-instance fast path: validation and the safety check as
    /// usual (so unsafe sets raise the same error), then one exhaustive
    /// search instead of graph construction plus per-component database
    /// queries.
    fn run_small(&self, queries: &[EntangledQuery]) -> Result<SccOutcome, CoordError> {
        let qs = QuerySet::new(queries.to_vec());
        qs.validate(self.db)?;
        let mut counter = UnifyCounter::new();
        check_safety(&qs, &mut counter)?;

        let result = bruteforce::max_coordinating_set(self.db, queries)?;
        // One grounding = one conjunctive query to the database. Counted
        // from the search's own tally, not the shared `Database` stats —
        // those are global and would absorb concurrent callers' queries.
        let db_queries = result.matchings_tried as usize;

        let found: Vec<FoundSet> = result.best.into_iter().collect();
        let best = self.selector.choose(&found);
        let stats = SccStats {
            db_queries,
            candidates: found.len(),
            unify_calls: counter.calls(),
            ..SccStats::default()
        };
        Ok(SccOutcome {
            qs,
            found,
            best,
            stats,
        })
    }

    /// Run the database phase on a preprocessed instance.
    pub fn run_preprocessed(&self, pre: Preprocessed) -> Result<SccOutcome, CoordError> {
        self.run_preprocessed_inner(pre, 1)
    }

    /// Run the full algorithm with the condensation-DAG sweep
    /// parallelized over `threads` workers (the "parallel processes"
    /// future work of Section 6.2, applied to the SCC algorithm).
    /// Independence comes at two granularities, both via
    /// `std::thread::scope` (mirroring the Consistent algorithm's
    /// chunked value sweep):
    ///
    /// * **weakly connected groups** of the condensation share nothing
    ///   at all — each worker sweeps whole groups sequentially, so a
    ///   forest of independent chains parallelizes with one thread
    ///   spawn per worker;
    /// * within a single connected group, components are layered into
    ///   reverse-topological *wavefronts* (components in the same wave
    ///   share no edges); a wave wide enough to amortize the spawn is
    ///   evaluated concurrently, narrow waves run inline.
    ///
    /// The outcome is identical to [`SccCoordinator::run`]: the same
    /// candidate sets in the same order, the same groundings and the
    /// same [`SccStats`] (the equivalence suites assert `==` on both).
    /// The only observable difference is on *error* paths: components
    /// after the failing one in sequential order may already have
    /// issued their database queries before the error surfaces, and
    /// when several components would error, the one whose error is
    /// returned may differ from the sequential sweep's (which always
    /// reports the smallest component id).
    pub fn run_parallel(
        &self,
        queries: &[EntangledQuery],
        threads: usize,
    ) -> Result<SccOutcome, CoordError> {
        if !queries.is_empty() && queries.len() <= self.bruteforce_cutoff {
            return self.run_small(queries);
        }
        let pre = preprocess(self.db, queries)?;
        self.run_preprocessed_parallel(pre, threads)
    }

    /// [`SccCoordinator::run_preprocessed`] with the wavefront-parallel
    /// component sweep of [`SccCoordinator::run_parallel`].
    pub fn run_preprocessed_parallel(
        &self,
        pre: Preprocessed,
        threads: usize,
    ) -> Result<SccOutcome, CoordError> {
        self.run_preprocessed_inner(pre, threads.max(1))
    }

    fn run_preprocessed_inner(
        &self,
        pre: Preprocessed,
        threads: usize,
    ) -> Result<SccOutcome, CoordError> {
        let Preprocessed {
            qs,
            removed,
            graph,
            cond,
            unify_calls,
        } = pre;
        let n_comp = cond.len();
        let removed_set: Vec<bool> = {
            let mut v = vec![false; qs.len()];
            for r in &removed {
                v[r.index()] = true;
            }
            v
        };

        let mut stats = SccStats {
            removed: removed.len(),
            graph_edges: graph.edge_count(),
            components: n_comp,
            unify_calls,
            ..SccStats::default()
        };

        // One head index shared by every component's unification pass.
        let head_index = HeadIndex::build(&qs);

        // Per-query content digests for the cross-run cache, computed
        // once per run (the cache is ignored under from-scratch
        // evaluation, which must remain a true baseline).
        let cache = match self.evaluation {
            Evaluation::Differential => self.cache.as_deref(),
            Evaluation::FromScratch => None,
        };
        let digests: Option<Vec<u128>> =
            cache.map(|_| qs.queries().iter().map(digest_query).collect());

        let ctx = SweepCtx {
            db: self.db,
            qs: &qs,
            head_index: &head_index,
            cond: &cond,
            removed_set: &removed_set,
            mode: self.evaluation,
            cache,
            digests: digests.as_deref(),
        };

        // Per-component state: whether it failed, and the set of component
        // ids in its closure (itself + closures of successors). Component
        // ids are in reverse topological order, so walking them in
        // ascending order always finds successors already evaluated.
        let mut state = SweepState::new(n_comp);
        if threads == 1 {
            for c in 0..n_comp {
                let ev = eval_component(&ctx, &state.failed, &state.closures, &state.memos, c)?;
                state.commit(c, ev);
            }
        } else {
            // Weakly connected groups of the condensation are fully
            // independent; one spawn per worker covers the common
            // many-component case. A lone group falls back to the
            // wavefront sweep.
            let groups = weak_groups(&cond);
            if groups.len() > 1 {
                sweep_groups(&ctx, groups, threads, &mut state)?;
            } else {
                sweep_wavefronts(&ctx, threads, &mut state)?;
            }
        }

        stats.db_queries = state.db_queries;
        stats.ground_work = state.ground.total();
        if let Some(cache) = cache {
            cache.record_work(stats.ground_work);
        }
        // Candidate sets in component-id order — exactly the sequential
        // discovery order.
        let found: Vec<FoundSet> = state.found_per.into_iter().flatten().collect();
        stats.candidates = found.len();
        let best = self.selector.choose(&found);
        Ok(SccOutcome {
            qs,
            found,
            best,
            stats,
        })
    }
}

/// Read-only inputs shared by every component evaluation of one sweep.
#[derive(Clone, Copy)]
struct SweepCtx<'a> {
    db: &'a Database,
    qs: &'a QuerySet,
    head_index: &'a HeadIndex,
    cond: &'a Condensation,
    removed_set: &'a [bool],
    mode: Evaluation,
    cache: Option<&'a ClosureCache>,
    digests: Option<&'a [u128]>,
}

/// Mutable per-component results of a sweep, committed in id order.
struct SweepState {
    failed: Vec<bool>,
    closures: Vec<BTreeSet<usize>>,
    /// Memoized closure of each successfully grounded component —
    /// what predecessors delta-join against. `None` for failed
    /// components and for cross-run cache hits (which skip unification
    /// entirely; predecessors fall back to a counted scratch pass).
    memos: Vec<Option<ClosureMemo>>,
    found_per: Vec<Option<FoundSet>>,
    db_queries: usize,
    ground: GroundWork,
}

impl SweepState {
    fn new(n_comp: usize) -> Self {
        SweepState {
            failed: vec![false; n_comp],
            closures: vec![BTreeSet::new(); n_comp],
            memos: (0..n_comp).map(|_| None).collect(),
            found_per: (0..n_comp).map(|_| None).collect(),
            db_queries: 0,
            ground: GroundWork::default(),
        }
    }

    fn commit(&mut self, c: usize, ev: ComponentEval) {
        if ev.queried_db {
            self.db_queries += 1;
        }
        self.ground.absorb(ev.work);
        self.failed[c] = ev.failed;
        self.closures[c] = ev.closure;
        self.memos[c] = ev.memo;
        self.found_per[c] = ev.found;
    }
}

/// Partition the condensation's components into weakly connected groups
/// (ids ascending within each group). Two components in different
/// groups share no path at all, so whole groups evaluate independently.
fn weak_groups(cond: &Condensation) -> Vec<Vec<usize>> {
    let n_comp = cond.len();
    let mut uf = coord_graph::UnionFind::new(n_comp);
    for c in 0..n_comp {
        for succ in cond.dag.successors(NodeId(c)) {
            let (rc, rs) = (uf.find(c), uf.find(succ.index()));
            if rc != rs {
                uf.union(rc, rs);
            }
        }
    }
    let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for c in 0..n_comp {
        by_root.entry(uf.find(c)).or_default().push(c);
    }
    let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
    // Deterministic order (largest member count first helps the greedy
    // balancer; ties broken by first component id).
    groups.sort_by_key(|g| (std::cmp::Reverse(g.len()), g[0]));
    groups
}

/// One component's verdict as shipped back by a group worker. The
/// closure set stays worker-local: successor lookups never cross group
/// (hence worker) boundaries, and nothing reads closures once the
/// sweep is done.
struct WorkerVerdict {
    comp: usize,
    failed: bool,
    queried_db: bool,
    work: GroundWork,
    found: Option<FoundSet>,
}

/// Per-worker result of a group sweep: verdicts in ascending id order,
/// or the id of the first failing component with its error.
type WorkerSweep = Result<Vec<WorkerVerdict>, (usize, CoordError)>;

/// Sweep independent weakly-connected groups across `threads` scoped
/// workers: groups are balanced greedily by query count, each worker
/// processes its groups' components sequentially in ascending id order
/// (all dependencies stay inside the group), and results are committed
/// in global id order afterwards.
fn sweep_groups(
    ctx: &SweepCtx<'_>,
    groups: Vec<Vec<usize>>,
    threads: usize,
    state: &mut SweepState,
) -> Result<(), CoordError> {
    // Greedy longest-processing-time balance by total member queries.
    let workers = threads.min(groups.len());
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0usize; workers];
    for g in groups {
        let cost: usize = g.iter().map(|&c| ctx.cond.members(c).len()).sum();
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers > 0");
        load[w] += cost.max(1);
        assignment[w].extend(g);
    }
    for a in &mut assignment {
        a.sort_unstable();
    }

    let per_worker: Vec<WorkerSweep> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for own in &assignment {
            handles.push(scope.spawn(move || {
                // Worker-local successor state: every successor of an
                // owned component is owned too, so full-size local
                // arrays filled in id order are exactly the sequential
                // sweep restricted to this worker's groups (full-size
                // keeps indexing trivial; the unowned slots are one
                // bool and one empty set each).
                let mut local = SweepState::new(ctx.cond.len());
                let mut out = Vec::with_capacity(own.len());
                for &c in own {
                    match eval_component(ctx, &local.failed, &local.closures, &local.memos, c) {
                        Ok(mut ev) => {
                            out.push(WorkerVerdict {
                                comp: c,
                                failed: ev.failed,
                                queried_db: ev.queried_db,
                                work: ev.work,
                                found: ev.found.take(),
                            });
                            local.commit(c, ev);
                        }
                        Err(e) => return Err((c, e)),
                    }
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("group worker panicked"))
            .collect()
    });

    let mut verdicts: Vec<WorkerVerdict> = Vec::with_capacity(ctx.cond.len());
    let mut first_error: Option<(usize, CoordError)> = None;
    for r in per_worker {
        match r {
            Ok(list) => verdicts.extend(list),
            Err((c, e)) => {
                if first_error.as_ref().is_none_or(|(fc, _)| c < *fc) {
                    first_error = Some((c, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    verdicts.sort_by_key(|v| v.comp);
    for v in verdicts {
        if v.queried_db {
            state.db_queries += 1;
        }
        state.ground.absorb(v.work);
        state.failed[v.comp] = v.failed;
        state.found_per[v.comp] = v.found;
        // `state.closures` and `state.memos` stay empty for group-swept
        // components: closures and memos never cross group boundaries
        // and nothing reads them after the sweep completes.
    }
    Ok(())
}

/// Sweep one connected condensation group in reverse-topological
/// wavefronts: wave 0 holds the sinks, wave `l` the components whose
/// longest successor chain has length `l`. Every edge leaves a higher
/// wave for a strictly lower one, so components within a wave are
/// pairwise independent; waves wide enough to amortize a thread spawn
/// run concurrently, narrow waves run inline.
fn sweep_wavefronts(
    ctx: &SweepCtx<'_>,
    threads: usize,
    state: &mut SweepState,
) -> Result<(), CoordError> {
    let n_comp = ctx.cond.len();
    let mut level = vec![0usize; n_comp];
    let mut max_level = 0usize;
    for c in 0..n_comp {
        // Component ids are in reverse topological order, so every
        // successor's level is already final.
        let mut l = 0usize;
        for succ in ctx.cond.dag.successors(NodeId(c)) {
            l = l.max(level[succ.index()] + 1);
        }
        level[c] = l;
        max_level = max_level.max(l);
    }
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
    for (c, &l) in level.iter().enumerate() {
        waves[l].push(c);
    }

    for wave in &waves {
        let results: Vec<(usize, Result<ComponentEval, CoordError>)> = if wave.len() < 2 {
            wave.iter()
                .map(|&c| {
                    (
                        c,
                        eval_component(ctx, &state.failed, &state.closures, &state.memos, c),
                    )
                })
                .collect()
        } else {
            // Chunk the wave across scoped threads sharing the read-only
            // state of earlier waves (cf. `consistent.rs`'s value sweep).
            // Memos are shared read-only too: the delta join clones a
            // successor memo before extending it.
            std::thread::scope(|scope| {
                let chunk = wave.len().div_ceil(threads);
                let mut handles = Vec::new();
                for ch in wave.chunks(chunk.max(1)) {
                    let (failed, closures, memos) = (&state.failed, &state.closures, &state.memos);
                    handles.push(scope.spawn(move || {
                        ch.iter()
                            .map(|&c| (c, eval_component(ctx, failed, closures, memos, c)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("component worker panicked"))
                    .collect()
            })
        };

        // Commit the wave in component-id order (wave lists ascend).
        for (c, result) in results {
            state.commit(c, result?);
        }
    }
    Ok(())
}

/// What evaluating one component produced. Exactly one of `failed` /
/// `found` describes the verdict; `closure` is empty on failure so
/// predecessors merging it see the same sets the sequential sweep built.
/// `memo` is the closure's reusable unification state (absent on
/// failures, cross-run cache hits and from-scratch evaluation).
struct ComponentEval {
    failed: bool,
    closure: BTreeSet<usize>,
    queried_db: bool,
    found: Option<FoundSet>,
    memo: Option<ClosureMemo>,
    work: GroundWork,
}

/// Evaluate one component of the condensation DAG: merge successor
/// closures, unify the closure's postconditions with their unique heads,
/// and ground the combined body with one conjunctive query. Reads only
/// already-evaluated successor state (`failed` / `closures` / `memos`),
/// so the sequential sweep and both parallel sweeps share it verbatim —
/// which is what keeps their per-closure candidates and stats identical.
///
/// Under the default [`Evaluation::Differential`] mode the closure is
/// built as a delta join against the successors' memos (falling back to
/// a counted scratch pass when a live successor carries no memo — i.e.
/// it was answered by the cross-run cache); under
/// [`Evaluation::FromScratch`] every closure is re-unified in full.
/// Either way the assembled conjunctive query is isomorphic and the
/// verdict byte-identical (see [`crate::differential`]).
fn eval_component(
    ctx: &SweepCtx<'_>,
    failed: &[bool],
    closures: &[BTreeSet<usize>],
    memos: &[Option<ClosureMemo>],
    c: usize,
) -> Result<ComponentEval, CoordError> {
    let mut work = GroundWork::default();
    let failure = |work: GroundWork| ComponentEval {
        failed: true,
        closure: BTreeSet::new(),
        queried_db: false,
        found: None,
        memo: None,
        work,
    };

    // Removed queries cannot participate. (Removal depends on the whole
    // batch, not just this closure, so this verdict is never cached.)
    if ctx
        .cond
        .members(c)
        .iter()
        .any(|n| ctx.removed_set[n.index()])
    {
        return Ok(failure(work));
    }

    // Merge successor closures; fail if any successor failed. (Also not
    // cached: the failure belongs to the successor's closure.)
    let mut succs: BTreeSet<usize> = BTreeSet::new();
    for succ in ctx.cond.dag.successors(NodeId(c)) {
        succs.insert(succ.index());
    }
    let mut closure: BTreeSet<usize> = BTreeSet::new();
    closure.insert(c);
    for &s in &succs {
        if failed[s] {
            return Ok(failure(work));
        }
        closure.extend(closures[s].iter().copied());
    }

    // Collect the member queries of the whole closure R(q).
    let mut member_queries: Vec<QueryId> = closure
        .iter()
        .flat_map(|&ci| ctx.cond.members(ci).iter().map(|n| QueryId(n.index())))
        .collect();
    member_queries.sort_unstable();

    // Cross-run cache: a closure with these exact member contents may
    // already have a verdict against this database. Hits skip
    // unification and the database query entirely (and produce no memo
    // — a predecessor then takes the counted scratch path).
    let cache_key = match (ctx.cache, ctx.digests) {
        (Some(cache), Some(digests)) => {
            let member_digests: Vec<u128> =
                member_queries.iter().map(|q| digests[q.index()]).collect();
            let key = closure_key(&member_digests);
            if let Some(verdict) = cache.lookup(key) {
                return Ok(match verdict {
                    CachedVerdict::Failed => failure(work),
                    CachedVerdict::Found { bindings } => {
                        let grounding = grounding_from_bindings(ctx.qs, &member_queries, &bindings);
                        ComponentEval {
                            failed: false,
                            closure,
                            queried_db: false,
                            found: Some(FoundSet {
                                queries: member_queries,
                                grounding,
                            }),
                            memo: None,
                            work,
                        }
                    }
                });
            }
            Some((key, member_digests))
        }
        _ => None,
    };
    let cache_verdict = |verdict: CachedVerdict| {
        if let (Some(cache), Some((key, md))) = (ctx.cache, &cache_key) {
            cache.insert(*key, md.clone().into_boxed_slice(), verdict);
        }
    };

    // Unify the closure: every postcondition with its unique head —
    // differentially against successor memos where possible.
    let memo = match ctx.mode {
        Evaluation::FromScratch => {
            scratch_closure(ctx.qs, ctx.head_index, &member_queries, &mut work)
        }
        Evaluation::Differential => {
            let succ_memos: Vec<&ClosureMemo> =
                succs.iter().filter_map(|&s| memos[s].as_ref()).collect();
            if !succ_memos.is_empty() && succ_memos.len() == succs.len() {
                let mut own: Vec<QueryId> = ctx
                    .cond
                    .members(c)
                    .iter()
                    .map(|n| QueryId(n.index()))
                    .collect();
                own.sort_unstable();
                delta_unify(
                    ctx.qs,
                    ctx.head_index,
                    &member_queries,
                    &own,
                    &succ_memos,
                    &mut work,
                )
            } else {
                scratch_closure(ctx.qs, ctx.head_index, &member_queries, &mut work)
            }
        }
    };
    let Some(mut memo) = memo else {
        cache_verdict(CachedVerdict::Failed);
        return Ok(failure(work));
    };

    // One conjunctive query to the database for this component.
    let cq = memo.assemble();
    match ground_assembled(ctx.db, ctx.qs, &member_queries, &mut memo.subst, &cq)? {
        Some(grounding) => {
            cache_verdict(CachedVerdict::Found {
                bindings: Arc::new(bindings_from_grounding(ctx.qs, &member_queries, &grounding)),
            });
            Ok(ComponentEval {
                failed: false,
                closure,
                queried_db: true,
                found: Some(FoundSet {
                    queries: member_queries,
                    grounding,
                }),
                memo: match ctx.mode {
                    Evaluation::Differential => Some(memo),
                    Evaluation::FromScratch => None,
                },
                work,
            })
        }
        None => {
            cache_verdict(CachedVerdict::Failed);
            Ok(ComponentEval {
                queried_db: true,
                ..failure(work)
            })
        }
    }
}

/// Convenience: run the SCC Coordination Algorithm with default selection
/// and return only the best coordinating set.
pub fn scc_coordinate(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<Option<(Vec<QueryId>, Grounding)>, CoordError> {
    let outcome = SccCoordinator::new(db).run(queries)?;
    Ok(outcome
        .best()
        .map(|f| (f.queries.clone(), f.grounding.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::Value;

    /// Database for the flight-hotel example: Paris has flight+hotel,
    /// Athens has flight+hotel, Madrid has a flight but no hotel.
    fn fh_db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["id", "dest"]).unwrap();
        db.create_table("H", &["id", "loc"]).unwrap();
        for (id, d) in [(1, "Paris"), (2, "Athens"), (3, "Madrid")] {
            db.insert("F", vec![Value::int(id), Value::str(d)]).unwrap();
        }
        for (id, l) in [(10, "Paris"), (11, "Athens")] {
            db.insert("H", vec![Value::int(id), Value::str(l)]).unwrap();
        }
        db
    }

    fn fh_queries() -> Vec<EntangledQuery> {
        crate::graphs::tests::flight_hotel_queries()
            .queries()
            .to_vec()
    }

    #[test]
    fn flight_hotel_components() {
        let db = fh_db();
        let pre = preprocess(&db, &fh_queries()).unwrap();
        // SCCs: {qC, qG}, {qJ}, {qW} (Section 4).
        assert_eq!(pre.cond.len(), 3);
        assert!(pre.removed.is_empty());
        // {qC, qG} is the sink component: id 0 in reverse topo order.
        let comp0: Vec<usize> = pre.cond.members(0).iter().map(|n| n.index()).collect();
        let mut c0 = comp0.clone();
        c0.sort_unstable();
        assert_eq!(c0, vec![0, 1]);
    }

    #[test]
    fn flight_hotel_best_is_chris_guy_jonny() {
        // Chris+Guy coordinate on Paris. Jonny requires Athens for
        // himself while flying *with* Chris and Guy — grounding forces one
        // flight to go to both Paris and Athens, so R(qJ) fails; so does
        // R(qW) (it contains qJ via Q(J,·)... actually qW needs qJ's
        // hotel and qC's flight). The best coordinating set is {qC, qG}.
        let db = fh_db();
        let out = SccCoordinator::new(&db).run(&fh_queries()).unwrap();
        let names = out.best_names();
        assert_eq!(names, vec!["qC", "qG"]);
        // One DB query per component at most.
        assert!(out.stats.db_queries <= out.stats.components);
        // Verify against Definition 1.
        let best = out.best().unwrap();
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn list_structure_finds_whole_chain() {
        // q0 → q1 → q2, last query free: the whole list coordinates when
        // the database has a satisfying tuple (Figure 4 workload shape).
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(7)]).unwrap();
        let mk = |i: usize, next: Option<usize>| {
            let mut b = QueryBuilder::new(format!("q{i}"));
            if let Some(n) = next {
                b = b.postcondition("R", |a| a.constant(format!("u{n}")).var("x"));
            }
            b.head("R", |a| a.constant(format!("u{i}")).var("x"))
                .body("T", |a| a.var("x"))
                .build()
                .unwrap()
        };
        let queries = vec![mk(0, Some(1)), mk(1, Some(2)), mk(2, None)];
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        // Candidates: {q2}, {q1,q2}, {q0,q1,q2} — non-unique structure.
        assert_eq!(out.found.len(), 3);
        assert_eq!(out.best().unwrap().len(), 3);
        assert_eq!(out.stats.db_queries, 3);
        let best = out.best().unwrap();
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn failure_propagates_to_predecessors() {
        // q0 needs q1; q1's body is unsatisfiable ⇒ both fail, but q2
        // (independent) succeeds.
        let mut db = Database::new();
        db.create_table("T", &["id", "kind"]).unwrap();
        db.insert("T", vec![Value::int(1), Value::str("good")])
            .unwrap();
        let q0 = QueryBuilder::new("q0")
            .postcondition("R", |a| a.constant("u1").var("x"))
            .head("R", |a| a.constant("u0").var("x"))
            .body("T", |a| a.var("x").constant("good"))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("q1")
            .head("R", |a| a.constant("u1").var("y"))
            .body("T", |a| a.var("y").constant("missing"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("u2").var("z"))
            .body("T", |a| a.var("z").constant("good"))
            .build()
            .unwrap();
        let out = SccCoordinator::new(&db).run(&[q0, q1, q2]).unwrap();
        assert_eq!(out.best_names(), vec!["q2"]);
        assert_eq!(out.found.len(), 1);
    }

    #[test]
    fn preprocessing_removes_unmatchable_postconditions() {
        // q0 requires R(ghost, ·) which nobody produces; q1 requires q0.
        // Both are removed; q2 survives.
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let q0 = QueryBuilder::new("q0")
            .postcondition("R", |a| a.constant("ghost").var("x"))
            .head("R", |a| a.constant("u0").var("x"))
            .body("T", |a| a.var("x"))
            .build()
            .unwrap();
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("u0").var("y"))
            .head("R", |a| a.constant("u1").var("y"))
            .body("T", |a| a.var("y"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("u2").var("z"))
            .body("T", |a| a.var("z"))
            .build()
            .unwrap();
        let pre = preprocess(&db, &[q0, q1, q2]).unwrap();
        assert_eq!(pre.removed.len(), 2);
        let out = SccCoordinator::new(&db).run_preprocessed(pre).unwrap();
        assert_eq!(out.best_names(), vec!["q2"]);
        assert_eq!(out.stats.removed, 2);
    }

    #[test]
    fn unsafe_set_is_rejected() {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        // Two producers of R(u, ·) and one consumer ⇒ unsafe.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("T", |x| x.var("p"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("u").var("q"))
            .body("T", |x| x.var("q"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("T", |x| x.var("r"))
            .build()
            .unwrap();
        let err = SccCoordinator::new(&db).run(&[a, b, c]).unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
    }

    #[test]
    fn db_query_bound_holds() {
        // The number of database queries never exceeds the number of SCCs.
        let db = fh_db();
        db.stats().reset();
        let out = SccCoordinator::new(&db).run(&fh_queries()).unwrap();
        assert!(out.stats.db_queries <= out.stats.components);
        assert_eq!(db.stats().find_one_count() as usize, out.stats.db_queries);
    }

    #[test]
    fn bruteforce_fast_path_matches_full_algorithm_on_chains() {
        // Below the cutoff the fast path must find the same maximum-size
        // set as the paper's algorithm (chains have no size ties and no
        // cross-closure unions, so the global maximum IS the maximum
        // closure).
        let db = pool_db_small();
        for n in 1..=6 {
            let queries: Vec<EntangledQuery> = (0..n)
                .map(|i| {
                    let next = if i + 1 < n { vec![i + 1] } else { vec![] };
                    chain_q(i, &next)
                })
                .collect();
            let slow = SccCoordinator::new(&db).run(&queries).unwrap();
            let fast = SccCoordinator::new(&db)
                .with_bruteforce_cutoff(6)
                .run(&queries)
                .unwrap();
            assert_eq!(
                slow.best_names(),
                fast.best_names(),
                "n = {n}: fast path diverged"
            );
            let best = fast.best().unwrap();
            check_coordinating_set(&db, &fast.qs, &best.queries, &best.grounding).unwrap();
        }
    }

    #[test]
    fn bruteforce_fast_path_rejects_unsafe_sets_identically() {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("u").var("p"))
            .body("T", |x| x.var("p"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("u").var("q"))
            .body("T", |x| x.var("q"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("u").var("r"))
            .head("R", |x| x.constant("me").var("r"))
            .body("T", |x| x.var("r"))
            .build()
            .unwrap();
        let err = SccCoordinator::new(&db)
            .with_bruteforce_cutoff(6)
            .run(&[a, b, c])
            .unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
    }

    #[test]
    fn cutoff_leaves_larger_instances_on_the_paper_algorithm() {
        // Above the cutoff the full algorithm runs and reports its usual
        // per-component stats.
        let db = fh_db();
        let out = SccCoordinator::new(&db)
            .with_bruteforce_cutoff(2)
            .run(&fh_queries())
            .unwrap();
        assert_eq!(out.stats.components, 3);
        assert_eq!(out.best_names(), vec!["qC", "qG"]);
    }

    fn pool_db_small() -> Database {
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(7)]).unwrap();
        db
    }

    fn chain_q(i: usize, next: &[usize]) -> EntangledQuery {
        let mut b = QueryBuilder::new(format!("q{i}"));
        for &n in next {
            b = b.postcondition("R", |a| a.constant(format!("u{n}")).var("x"));
        }
        b.head("R", |a| a.constant(format!("u{i}")).var("x"))
            .body("T", |a| a.var("x"))
            .build()
            .unwrap()
    }

    #[test]
    fn components_graph_example_from_section_4() {
        // q3+q4 → q1+q2 ← q5+q6: candidates {q1,q2}, {q1..q4}, {q1,q2,q5,q6};
        // the algorithm does NOT check the union of all six.
        let mut db = Database::new();
        db.create_table("T", &["id"]).unwrap();
        db.insert("T", vec![Value::int(1)]).unwrap();
        let pair = |i: usize, j: usize, dep: Option<usize>| {
            let a_name = format!("q{i}");
            let b_name = format!("q{j}");
            let mut a = QueryBuilder::new(&a_name)
                .postcondition("R", |x| x.constant(format!("u{j}")).var("v"))
                .head("R", |x| x.constant(format!("u{i}")).var("v"))
                .body("T", |x| x.var("v"));
            if let Some(d) = dep {
                a = a.postcondition("R", |x| x.constant(format!("u{d}")).var("v"));
            }
            let b = QueryBuilder::new(&b_name)
                .postcondition("R", |x| x.constant(format!("u{i}")).var("w"))
                .head("R", |x| x.constant(format!("u{j}")).var("w"))
                .body("T", |x| x.var("w"))
                .build()
                .unwrap();
            (a.build().unwrap(), b)
        };
        let (q1, q2) = pair(1, 2, None);
        let (q3, q4) = pair(3, 4, Some(1));
        let (q5, q6) = pair(5, 6, Some(1));
        let out = SccCoordinator::new(&db)
            .run(&[q1, q2, q3, q4, q5, q6])
            .unwrap();
        assert_eq!(out.found.len(), 3);
        let sizes: Vec<usize> = out.found.iter().map(FoundSet::len).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 4, 4]);
        assert_eq!(out.best().unwrap().len(), 4);
    }
}
