//! Differential closure evaluation: memoized SCC groundings along the
//! condensation, in the style of incremental view maintenance (DBSP /
//! differential dataflow).
//!
//! The SCC Coordination Algorithm evaluates one closure `R(q)` per
//! component, walking the condensation in reverse topological order.
//! Evaluated from scratch, the closure work is Σ|closure| — quadratic on
//! a list workload, where the i-th closure repeats all the unification
//! and body rewriting already done for closure i−1. This module caches
//! per-component results at two granularities:
//!
//! * **Per-run memos** ([`ClosureMemo`]): after a component's closure is
//!   unified and grounded, its MGU ([`Substitution`]) and its body atoms
//!   rewritten under that MGU (per-member *fragments*) are kept. A
//!   predecessor evaluates as a **delta join**: clone the largest
//!   successor memo, absorb any others, unify only the component's *own*
//!   postconditions into the cached MGU with the representative-
//!   preserving ops of [`crate::unify`], and rebuild only the fragments
//!   whose variables were dethroned or newly bound (tracked by
//!   [`DeltaLog`]). On a chain, a component touches O(Δ) atoms instead
//!   of O(|closure|).
//! * **Cross-run verdicts** ([`ClosureCache`]): a content-addressed map
//!   from the closure's member digests to its evaluation verdict. The
//!   online engine re-evaluates a component every time a query arrives;
//!   with the cache, a closure whose member *contents* were already
//!   decided against this database is answered without unification or a
//!   database query. Keys are 128-bit FNV-1a digests of the members'
//!   canonical byte encoding, so invalidation is structural: any change
//!   to a member changes the key, and stale entries are simply never
//!   looked up again. Explicit eviction (on retire) is an optimization,
//!   never a correctness requirement.
//!
//! # Why memoized evaluation is byte-identical to from-scratch
//!
//! The delta join and the scratch evaluation accumulate exactly the same
//! *set* of postcondition–head constraints: successor memos carry the
//! constraints of their closures (closures are closed under coordination
//! edges, and condensation edges only point from a component to its
//! successors, so a successor's postconditions never target this
//! component), and the component's own postconditions are unified on
//! top. Safety (Definition 2) makes the matching head unique, so both
//! paths pick the same head per postcondition. The resulting MGUs are
//! therefore equal up to the choice of class representatives, and the
//! assembled conjunctive queries are isomorphic: same atoms in the same
//! member-sorted order, with variables renamed by a bijection. Fragment
//! atoms are kept only while their variables remain unbound class
//! representatives (the staleness check), so every atom displays a
//! current representative or a constant and co-occurrence of variables
//! is preserved. `find_one` backtracks in atom order and is invariant
//! under variable renaming, so it returns the same row values; grounding
//! then resolves every member variable to the same [`Value`]s. The
//! differential proptest suite asserts this equality byte-for-byte.
//!
//! Cached verdicts are pure functions of (ordered member contents,
//! database): member names and batch-global variable offsets do not
//! affect the values, and the borrow checker guarantees the database
//! cannot change while an evaluator holds it. Verdicts therefore store
//! per-member, *local*-variable value rows, reusable across batches.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use coord_obs::{Counter, TraceCtx, Tracer};
use parking_lot::Mutex;

use crate::combined::unify_members_counted;
use crate::graphs::HeadIndex;
use crate::instance::QuerySet;
use crate::persist::EntangledQueryCodec;
use crate::query::{EntangledQuery, QueryId};
use crate::semantics::Grounding;
use crate::unify::{atoms_unifiable, DeltaLog, Substitution};
use coord_db::{Atom, ConjunctiveQuery, Term, Value, Var};
use coord_store::QueryCodec;

/// Work performed inside closure evaluation — the counter the
/// differential layer keeps proportional to the delta where from-scratch
/// evaluation pays Σ|closure|.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroundWork {
    /// Postcondition–head pairs merged into an MGU.
    pub unified: u64,
    /// Body atoms rewritten under an MGU.
    pub rewritten: u64,
    /// Cached fragment atoms checked for staleness (and found fresh).
    pub checked: u64,
}

impl GroundWork {
    /// Total closure-evaluation operations.
    pub fn total(&self) -> u64 {
        self.unified + self.rewritten + self.checked
    }

    /// Accumulate another tally into this one.
    pub fn absorb(&mut self, other: GroundWork) {
        self.unified += other.unified;
        self.rewritten += other.rewritten;
        self.checked += other.checked;
    }
}

/// A successfully unified closure, memoized for reuse by predecessor
/// components within the same sweep.
#[derive(Clone, Debug)]
pub struct ClosureMemo {
    /// The closure's MGU over the batch's global variable space.
    pub subst: Substitution,
    /// Per-member body atoms rewritten under `subst`. `BTreeMap`
    /// iteration order is [`QueryId`] order — exactly the member-sorted
    /// atom order [`crate::combined::combined_body`] produces, which
    /// `find_one`'s atom-order backtracking makes load-bearing.
    pub fragments: BTreeMap<QueryId, Arc<Vec<Atom>>>,
    /// Total atoms across all fragments (delta-join base selection).
    pub atom_count: usize,
}

impl ClosureMemo {
    /// Assemble the combined conjunctive query from the cached fragments.
    pub fn assemble(&self) -> ConjunctiveQuery {
        let mut atoms = Vec::with_capacity(self.atom_count);
        for frag in self.fragments.values() {
            atoms.extend(frag.iter().cloned());
        }
        ConjunctiveQuery::new(atoms)
    }
}

/// Unify and rewrite a closure from scratch, producing its memo.
/// Returns `None` if unification fails (the closure cannot coordinate).
pub fn scratch_closure(
    qs: &QuerySet,
    index: &HeadIndex,
    members: &[QueryId],
    work: &mut GroundWork,
) -> Option<ClosureMemo> {
    let subst = Substitution::identity(qs.total_vars());
    let mut subst = unify_members_counted(qs, members, subst, index, work).ok()?;
    let mut fragments = BTreeMap::new();
    let mut atom_count = 0;
    for &m in members {
        let mut frag = Vec::new();
        for atom in qs.body(m) {
            frag.push(subst.apply(&atom));
            work.rewritten += 1;
        }
        atom_count += frag.len();
        fragments.insert(m, Arc::new(frag));
    }
    Some(ClosureMemo {
        subst,
        fragments,
        atom_count,
    })
}

/// Is this fragment atom stale under the (possibly extended) MGU?
/// Fragment variables are unbound class representatives of the MGU they
/// were rewritten under; the atom must be rebuilt once such a variable
/// is dethroned or its class acquires a binding.
fn atom_is_stale(subst: &Substitution, atom: &Atom) -> bool {
    atom.terms.iter().any(|t| match t {
        Term::Const(_) => false,
        Term::Var(v) => {
            let r = subst.find_immutable(*v);
            r != *v || subst.is_bound(r)
        }
    })
}

/// Evaluate a closure as a delta join against its successors' memos:
/// clone the largest successor memo (ties broken toward the first, i.e.
/// the smallest component id as passed by the caller), absorb the rest,
/// unify only `own`'s postconditions into the cached MGU, and rebuild
/// only the stale fragments. Returns `None` if unification fails —
/// exactly when the from-scratch union of the same constraints would.
pub fn delta_unify(
    qs: &QuerySet,
    index: &HeadIndex,
    closure: &[QueryId],
    own: &[QueryId],
    successors: &[&ClosureMemo],
    work: &mut GroundWork,
) -> Option<ClosureMemo> {
    debug_assert!(!successors.is_empty(), "sinks take the scratch path");
    let mut base = 0;
    for (i, m) in successors.iter().enumerate() {
        if m.atom_count > successors[base].atom_count {
            base = i;
        }
    }

    let mut subst = successors[base].subst.clone();
    let mut fragments = successors[base].fragments.clone();
    let mut atom_count = successors[base].atom_count;
    let multi = successors.len() > 1;
    for (i, s) in successors.iter().enumerate() {
        if i == base {
            continue;
        }
        // Plain (unlogged) union of the other memo's constraints; the
        // unconditional multi-successor scan below repairs any fragment
        // this dethrones.
        subst.absorb(&s.subst).ok()?;
        for (q, frag) in &s.fragments {
            if fragments.insert(*q, Arc::clone(frag)).is_none() {
                atom_count += frag.len();
            }
        }
    }

    // Unify the component's own postconditions into the cached MGU,
    // preferring cached representatives so clean extensions (chains)
    // leave every cached fragment untouched.
    let mut log = DeltaLog::default();
    let in_closure = |q: QueryId| closure.binary_search(&q).is_ok();
    for &m in own {
        for (p_local, p) in qs
            .query(m)
            .postconditions()
            .iter()
            .zip(qs.postconditions(m))
        {
            let mut matched = None;
            for (dst, hi) in index.candidates(p_local) {
                if in_closure(dst) && atoms_unifiable(p_local, &qs.query(dst).heads()[hi]) {
                    matched = Some(qs.globalize(dst, &qs.query(dst).heads()[hi]));
                    break;
                }
            }
            let h = matched?;
            subst.unify_atoms_directed(&p, &h, &mut log).ok()?;
            work.unified += 1;
        }
    }

    // A dirty entry only matters if the variable can occur in a cached
    // fragment — i.e. its owner query is in a successor's closure.
    // Fresh own-member variables never do.
    if !multi && !log.is_clean() {
        let cached = &successors[base].fragments;
        log.dirty
            .retain(|&v| cached.contains_key(&qs.owner_of(v).0));
    }

    if multi || !log.is_clean() {
        let mut fresh: Vec<(QueryId, Arc<Vec<Atom>>)> = Vec::new();
        for (q, frag) in &fragments {
            let mut stale = false;
            for atom in frag.iter() {
                work.checked += 1;
                if atom_is_stale(&subst, atom) {
                    stale = true;
                    break;
                }
            }
            if stale {
                let mut out = Vec::with_capacity(frag.len());
                for atom in frag.iter() {
                    out.push(subst.apply(atom));
                    work.rewritten += 1;
                }
                fresh.push((*q, Arc::new(out)));
            }
        }
        for (q, frag) in fresh {
            fragments.insert(q, frag);
        }
    }

    // The component's own fragments are always built fresh.
    for &m in own {
        let mut frag = Vec::new();
        for atom in qs.body(m) {
            frag.push(subst.apply(&atom));
            work.rewritten += 1;
        }
        atom_count += frag.len();
        let prev = fragments.insert(m, Arc::new(frag));
        debug_assert!(prev.is_none(), "own members never appear in successors");
    }

    Some(ClosureMemo {
        subst,
        fragments,
        atom_count,
    })
}

/// Rebuild a total grounding over `members` from cached per-member
/// value rows (inverse of [`bindings_from_grounding`]).
pub fn grounding_from_bindings(
    qs: &QuerySet,
    members: &[QueryId],
    bindings: &[Vec<Value>],
) -> Grounding {
    debug_assert_eq!(members.len(), bindings.len());
    let mut g = Grounding::new();
    for (&m, vals) in members.iter().zip(bindings) {
        for (l, v) in vals.iter().enumerate() {
            g.set(qs.global_var(m, Var(l as u32)), v.clone());
        }
    }
    g
}

/// Extract batch-independent per-member value rows from a total
/// grounding over `members` (local variable order within each member).
pub fn bindings_from_grounding(
    qs: &QuerySet,
    members: &[QueryId],
    g: &Grounding,
) -> Vec<Vec<Value>> {
    members
        .iter()
        .map(|&m| {
            qs.vars_of(m)
                .map(|v| g.get(v).expect("groundings are total").clone())
                .collect()
        })
        .collect()
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

fn fnv128(h: u128, bytes: &[u8]) -> u128 {
    let mut h = h;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 128-bit FNV-1a digest of a query's canonical byte encoding
/// ([`EntangledQueryCodec`]). 128 bits because digest collisions would
/// alias cache entries — a correctness, not performance, concern.
pub fn digest_query(q: &EntangledQuery) -> u128 {
    let mut buf = Vec::with_capacity(128);
    EntangledQueryCodec.encode(q, &mut buf);
    fnv128(FNV_OFFSET, &buf)
}

/// Cache key for a closure: the fold of its members' digests in
/// member-sorted order (order is part of the identity — fragments and
/// the combined query depend on it).
pub fn closure_key(member_digests: &[u128]) -> u128 {
    let mut h = FNV_OFFSET;
    for d in member_digests {
        h = fnv128(h, &d.to_le_bytes());
    }
    h
}

/// A closure's cached evaluation verdict — a pure function of the
/// members' ordered contents and the database.
#[derive(Clone, Debug)]
pub enum CachedVerdict {
    /// Unification failed or the combined query had no satisfying row.
    Failed,
    /// Grounded: one value row per member, indexed by local variable.
    Found {
        /// Per-member value rows in member-sorted order.
        bindings: Arc<Vec<Vec<Value>>>,
    },
}

struct CacheEntry {
    members: Box<[u128]>,
    verdict: CachedVerdict,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<u128, CacheEntry>,
    generation: u64,
    /// Trace sink for per-lookup `cache_hit` / `cache_miss` instants
    /// (disabled until [`ClosureCache::attach`] wires a registry in).
    tracer: Tracer,
}

/// Observable cache counters (`hits`/`misses` per lookup, cumulative
/// grounding work recorded by the owning evaluator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub ground_work: u64,
}

/// Content-addressed cross-run verdict cache, shared by every sweep (and
/// every shard — clones of an evaluator share it through an [`Arc`]).
///
/// Recency is a generation counter bumped per lookup, not wall-clock
/// time, so eviction order is deterministic.
pub struct ClosureCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    /// Lock-free counters, readable without the map mutex and
    /// exportable through a [`coord_obs::Registry`] via
    /// [`ClosureCache::attach`].
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    work: Counter,
}

impl Default for ClosureCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ClosureCache {
    /// Default capacity: 4096 closures.
    pub fn new() -> Self {
        Self::with_capacity(4096)
    }

    /// A cache evicting down to ~¾ of `capacity` (least recently used
    /// first) whenever an insert exceeds it.
    pub fn with_capacity(capacity: usize) -> Self {
        ClosureCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(4),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            work: Counter::new(),
        }
    }

    /// Export this cache's counters through `obs` (as `memo_hits`,
    /// `memo_misses`, `memo_evictions`, `memo_ground_work`) and route
    /// per-lookup `cache_hit`/`cache_miss` instants into its tracer —
    /// stamped with the submitting request's [`TraceCtx`] and carrying
    /// the lookup's nanos as `arg`, so the trace analyzer can attribute
    /// memo time per trace.
    pub fn attach(&self, obs: &coord_obs::Registry) {
        obs.register_counter("memo_hits", &self.hits);
        obs.register_counter("memo_misses", &self.misses);
        obs.register_counter("memo_evictions", &self.evictions);
        obs.register_counter("memo_ground_work", &self.work);
        self.inner.lock().tracer = obs.tracer();
    }

    /// Look up a closure verdict by key.
    pub fn lookup(&self, key: u128) -> Option<CachedVerdict> {
        let mut inner = self.inner.lock();
        // Timed only when a tracer is attached (no clock reads on the
        // unattached path); the instant's arg is the lookup's nanos.
        let started = inner.tracer.is_enabled().then(std::time::Instant::now);
        inner.generation += 1;
        let generation = inner.generation;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.last_used = generation;
                let v = e.verdict.clone();
                self.hits.incr();
                if let Some(t) = started {
                    let nanos = t.elapsed().as_nanos() as u64;
                    inner
                        .tracer
                        .instant_in(TraceCtx::current(), "cache_hit", nanos);
                }
                Some(v)
            }
            None => {
                self.misses.incr();
                if let Some(t) = started {
                    let nanos = t.elapsed().as_nanos() as u64;
                    inner
                        .tracer
                        .instant_in(TraceCtx::current(), "cache_miss", nanos);
                }
                None
            }
        }
    }

    /// Record a freshly evaluated verdict.
    pub fn insert(&self, key: u128, members: Box<[u128]>, verdict: CachedVerdict) {
        let mut inner = self.inner.lock();
        inner.generation += 1;
        let generation = inner.generation;
        inner.map.insert(
            key,
            CacheEntry {
                members,
                verdict,
                last_used: generation,
            },
        );
        if inner.map.len() > self.capacity {
            // Evict the least recently used quarter in one pass.
            let mut order: Vec<(u64, u128)> =
                inner.map.iter().map(|(k, e)| (e.last_used, *k)).collect();
            order.sort_unstable();
            let drop_n = (self.capacity / 4).max(1);
            for (_, k) in order.into_iter().take(drop_n) {
                inner.map.remove(&k);
                self.evictions.incr();
            }
        }
    }

    /// Drop every entry naming one of `departed` among its members
    /// (called when queries retire). Purely an optimization: retired
    /// queries never reappear in a closure, so their entries would just
    /// age out — correctness relies on content addressing alone.
    pub fn evict_members(&self, departed: &[u128]) {
        if departed.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner
            .map
            .retain(|_, e| !e.members.iter().any(|m| departed.contains(m)));
        self.evictions.add((before - inner.map.len()) as u64);
    }

    /// Accumulate grounding work observed by the owning evaluator.
    pub fn record_work(&self, work: u64) {
        self.work.add(work);
    }

    /// Current counters.
    pub fn stats(&self) -> MemoStats {
        let entries = self.inner.lock().map.len();
        MemoStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
            ground_work: self.work.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn q(name: &str, tag: &str) -> EntangledQuery {
        QueryBuilder::new(name)
            .head("R", |a| a.constant(name.to_string()).var("x"))
            .body("T", |a| a.var("x").constant(tag.to_string()))
            .build()
            .unwrap()
    }

    #[test]
    fn digests_separate_contents_and_respect_order() {
        let a = digest_query(&q("a", "t0"));
        let b = digest_query(&q("b", "t0"));
        let a2 = digest_query(&q("a", "t1"));
        assert_ne!(a, b, "names are part of the identity");
        assert_ne!(a, a2, "bodies are part of the identity");
        assert_eq!(a, digest_query(&q("a", "t0")), "digests are stable");
        assert_ne!(closure_key(&[a, b]), closure_key(&[b, a]));
    }

    #[test]
    fn cache_round_trips_verdicts_and_counts() {
        let cache = ClosureCache::new();
        let key = closure_key(&[1, 2]);
        assert!(cache.lookup(key).is_none());
        cache.insert(key, Box::new([1, 2]), CachedVerdict::Failed);
        assert!(matches!(cache.lookup(key), Some(CachedVerdict::Failed)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        let cache = ClosureCache::with_capacity(4);
        for i in 0..4u128 {
            cache.insert(closure_key(&[i]), Box::new([i]), CachedVerdict::Failed);
        }
        // Touch entry 0 so it is the most recently used.
        assert!(cache.lookup(closure_key(&[0])).is_some());
        cache.insert(closure_key(&[9]), Box::new([9]), CachedVerdict::Failed);
        assert!(
            cache.lookup(closure_key(&[0])).is_some(),
            "recently used survives"
        );
        assert!(
            cache.lookup(closure_key(&[1])).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn member_eviction_drops_exactly_intersecting_entries() {
        let cache = ClosureCache::new();
        cache.insert(
            closure_key(&[1, 2]),
            Box::new([1, 2]),
            CachedVerdict::Failed,
        );
        cache.insert(closure_key(&[3]), Box::new([3]), CachedVerdict::Failed);
        cache.evict_members(&[2]);
        assert!(cache.lookup(closure_key(&[1, 2])).is_none());
        assert!(cache.lookup(closure_key(&[3])).is_some());
    }

    #[test]
    fn binding_rows_round_trip_through_groundings() {
        let qs = QuerySet::new(vec![q("a", "t0"), q("b", "t1")]);
        let members = [QueryId(0), QueryId(1)];
        let mut g = Grounding::new();
        for (i, m) in members.iter().enumerate() {
            for v in qs.vars_of(*m) {
                g.set(v, Value::int(i as i64));
            }
        }
        let rows = bindings_from_grounding(&qs, &members, &g);
        let back = grounding_from_bindings(&qs, &members, &rows);
        for m in &members {
            for v in qs.vars_of(*m) {
                assert_eq!(g.get(v), back.get(v));
            }
        }
    }
}
