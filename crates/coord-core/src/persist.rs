//! Durable online engines for entangled queries: the `coord-store`
//! WAL/snapshot subsystem wired to the paper's query type.
//!
//! * [`EntangledQueryCodec`] — deterministic byte serialization of
//!   [`EntangledQuery`] (name, variable table, postcondition/head/body
//!   atoms) for the log and snapshots,
//! * [`DurableCoordinationEngine`] — the single-writer engine with a
//!   write-ahead log: strict prefix semantics (state after recovery is
//!   exactly the state after some prefix of acknowledged submits),
//! * [`DurableSharedEngine`] — the sharded service with a log stream
//!   per shard (records spread round-robin across streams; recovery is
//!   order-independent) under a shared snapshot epoch; `SharedEngine`
//!   callers opt into durability by swapping one constructor:
//!
//! ```no_run
//! use coord_core::persist::DurableSharedEngine;
//! use coord_db::Database;
//!
//! let db = Database::new();
//! let engine = DurableSharedEngine::open(&db, "/var/lib/coord").unwrap();
//! // …submit like a SharedEngine; state survives a crash…
//! ```
//!
//! Recovery replays `snapshot + log tail` without re-evaluating any
//! component (the log records which queries retired), then re-routes
//! the surviving pending set — so the restored engine's pending set,
//! component structure and subsequent coordination results match an
//! uninterrupted run (property-tested in `tests/durability_props.rs`).

use crate::engine::{QueryAnswer, SccEvaluator, SubmitResult};
use crate::error::CoordError;
use crate::query::EntangledQuery;
use coord_db::{Atom, Database, Term, Value, Var};
use coord_engine::MetricsSnapshot;
use coord_obs::Registry as ObsRegistry;
use coord_store::bytes::{put_i64, put_str, put_u32, Reader};
use coord_store::{DurableError, QueryCodec, RecoveryReport, StoreError};
use std::path::Path;

pub use coord_store::{DurabilityOptions, StoreStatsSnapshot, SyncPolicy};

/// Deterministic byte codec for [`EntangledQuery`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EntangledQueryCodec;

const TERM_VAR: u8 = 0;
const TERM_INT: u8 = 1;
const TERM_STR: u8 = 2;

fn put_atoms(out: &mut Vec<u8>, atoms: &[Atom]) {
    put_u32(out, atoms.len() as u32);
    for atom in atoms {
        put_str(out, atom.relation.as_str());
        put_u32(out, atom.terms.len() as u32);
        for term in &atom.terms {
            match term {
                Term::Var(v) => {
                    out.push(TERM_VAR);
                    put_u32(out, v.0);
                }
                Term::Const(Value::Int(i)) => {
                    out.push(TERM_INT);
                    put_i64(out, *i);
                }
                Term::Const(Value::Str(s)) => {
                    out.push(TERM_STR);
                    put_str(out, s);
                }
            }
        }
    }
}

fn read_atoms(r: &mut Reader<'_>) -> Result<Vec<Atom>, StoreError> {
    let count = r.u32()? as usize;
    let mut atoms = Vec::with_capacity(count);
    for _ in 0..count {
        let relation = r.str()?;
        let arity = r.u32()? as usize;
        let mut terms = Vec::with_capacity(arity);
        for _ in 0..arity {
            let term = match r.u8()? {
                TERM_VAR => Term::Var(Var(r.u32()?)),
                TERM_INT => Term::Const(Value::Int(r.i64()?)),
                TERM_STR => Term::Const(Value::str(r.str()?)),
                t => return Err(StoreError::Codec(format!("unknown term tag {t}"))),
            };
            terms.push(term);
        }
        atoms.push(Atom::new(relation, terms));
    }
    Ok(atoms)
}

impl QueryCodec<EntangledQuery> for EntangledQueryCodec {
    fn encode(&self, query: &EntangledQuery, out: &mut Vec<u8>) {
        put_str(out, query.name());
        put_u32(out, query.var_count());
        for i in 0..query.var_count() {
            put_str(out, query.var_name(Var(i)));
        }
        put_atoms(out, query.postconditions());
        put_atoms(out, query.heads());
        put_atoms(out, query.body());
    }

    fn decode(&self, bytes: &[u8]) -> Result<EntangledQuery, StoreError> {
        let mut r = Reader::new(bytes);
        let name = r.str()?;
        let vars = r.u32()? as usize;
        let mut var_names = Vec::with_capacity(vars);
        for _ in 0..vars {
            var_names.push(r.str()?);
        }
        let postconditions = read_atoms(&mut r)?;
        let heads = read_atoms(&mut r)?;
        let body = read_atoms(&mut r)?;
        if !r.is_empty() {
            return Err(StoreError::Codec(format!(
                "trailing bytes after query `{name}`"
            )));
        }
        EntangledQuery::new(name, postconditions, heads, body, var_names)
            .map_err(|e| StoreError::Codec(e.to_string()))
    }
}

fn store_err(e: StoreError) -> CoordError {
    CoordError::Store {
        message: e.to_string(),
    }
}

fn durable_err(e: DurableError<CoordError>) -> CoordError {
    match e {
        DurableError::Engine(e) => e,
        DurableError::Store(e) => store_err(e),
    }
}

/// The single-writer online engine with WAL + snapshot durability:
/// [`crate::engine::CoordinationEngine`] semantics, crash-safe.
pub struct DurableCoordinationEngine<'a> {
    db: &'a Database,
    inner: coord_store::DurableEngine<EntangledQuery, SccEvaluator<'a>, EntangledQueryCodec>,
}

impl<'a> DurableCoordinationEngine<'a> {
    /// Open (or create) a durable engine at `dir` with default
    /// durability options, recovering any pending set left by a crash.
    pub fn open(db: &'a Database, dir: impl AsRef<Path>) -> Result<Self, CoordError> {
        Self::open_with(db, dir, DurabilityOptions::default())
    }

    /// Open with explicit sync/snapshot configuration.
    pub fn open_with(
        db: &'a Database,
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
    ) -> Result<Self, CoordError> {
        Self::open_with_obs(db, dir, options, ObsRegistry::new())
    }

    /// Open with an explicit observability registry shared by the store
    /// and the engine; the evaluator's closure cache registers its
    /// `memo_*` counters there too.
    pub fn open_with_obs(
        db: &'a Database,
        dir: impl AsRef<Path>,
        options: DurabilityOptions,
        obs: ObsRegistry,
    ) -> Result<Self, CoordError> {
        db.attach_obs(&obs);
        let evaluator = SccEvaluator::new(db);
        if let Some(cache) = evaluator.closure_cache() {
            cache.attach(&obs);
        }
        let inner = coord_store::DurableEngine::open_with_obs(
            dir,
            evaluator,
            EntangledQueryCodec,
            options,
            obs,
        )
        .map_err(store_err)?;
        Ok(DurableCoordinationEngine { db, inner })
    }

    /// Submit a query; the accepted mutation is logged before this
    /// returns, so an acknowledged submit survives a crash.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        let outcome = self.inner.submit(query).map_err(durable_err)?;
        Ok(SubmitResult {
            answers: outcome.delivery.unwrap_or_default(),
        })
    }

    /// Submit a batch, collecting every delivered answer.
    pub fn submit_all(
        &mut self,
        queries: impl IntoIterator<Item = EntangledQuery>,
    ) -> Result<Vec<QueryAnswer>, CoordError> {
        let mut out = Vec::new();
        for q in queries {
            out.extend(self.submit(q)?.answers);
        }
        Ok(out)
    }

    /// Queries currently buffered.
    pub fn pending(&self) -> Vec<&EntangledQuery> {
        self.inner.pending().collect()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> usize {
        self.inner.delivered() as usize
    }

    /// Number of incrementally maintained components.
    pub fn component_count(&self) -> usize {
        self.inner.component_count()
    }

    /// The engine's incremental-maintenance metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics().snapshot()
    }

    /// What recovery found when this engine was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        self.inner.recovery_report()
    }

    /// Durable-store counters (records, bytes, snapshots, epoch).
    pub fn store_stats(&self) -> StoreStatsSnapshot {
        self.inner.store().stats()
    }

    /// The observability registry shared by the store and the engine.
    pub fn obs(&self) -> &ObsRegistry {
        self.inner.obs()
    }

    /// End offset of the WAL after the last acknowledged submit.
    pub fn wal_len(&self) -> u64 {
        self.inner.wal_len()
    }

    /// Snapshot the pending set now, rotating the WAL epoch.
    pub fn snapshot(&mut self) -> Result<(), CoordError> {
        self.inner.snapshot().map_err(store_err)
    }

    /// The last background rotation failure, if any (cleared on read).
    /// Submits stay durable through the still-open WAL when a rotation
    /// fails.
    pub fn take_snapshot_error(&mut self) -> Option<CoordError> {
        self.inner.take_snapshot_error().map(store_err)
    }

    /// Check engine + registry invariants; panics with a description on
    /// violation.
    pub fn validate_invariants(&mut self) {
        self.inner.validate_invariants();
    }
}

/// The sharded, thread-safe online service with durability: the
/// [`crate::engine::SharedEngine`] API plus crash recovery. A WAL
/// stream per shard (round-robin) under a shared snapshot epoch.
pub struct DurableSharedEngine<'a> {
    db: &'a Database,
    inner: coord_store::DurableShardedEngine<EntangledQuery, SccEvaluator<'a>, EntangledQueryCodec>,
}

impl<'a> DurableSharedEngine<'a> {
    /// Open (or create) a durable service at `dir` with one shard per
    /// available CPU (capped at 16) and default durability options.
    pub fn open(db: &'a Database, dir: impl AsRef<Path>) -> Result<Self, CoordError> {
        let shards = std::thread::available_parallelism()
            .map_or(4, std::num::NonZero::get)
            .clamp(1, 16);
        Self::open_with(db, dir, shards, DurabilityOptions::default())
    }

    /// Open with explicit shard count and durability configuration. The
    /// shard count may differ from the one that wrote the store — the
    /// recovered pending set is re-routed across the new shards.
    pub fn open_with(
        db: &'a Database,
        dir: impl AsRef<Path>,
        shards: usize,
        options: DurabilityOptions,
    ) -> Result<Self, CoordError> {
        Self::open_with_obs(db, dir, shards, options, ObsRegistry::new())
    }

    /// Open with an explicit observability registry threaded through
    /// the whole durable stack — one [`ObsRegistry::snapshot`] then
    /// covers submit latency, WAL append/sync, snapshot rotations,
    /// migrations, rebalance passes, per-shard `shard_pending` /
    /// `engine_inflight` gauges, the closure cache's `memo_*` counters,
    /// and the database's `db_*` probe counters plus the
    /// `db_probe_nanos` histogram. Every submit also opens a
    /// request-scoped trace ticket ([`coord_obs::TraceCtx`]) at the
    /// durable entry point, so lock-wait, evaluation, storage probes,
    /// memo lookups and WAL append/sync events in the trace ring all
    /// carry that submit's trace id — [`coord_obs::TraceAnalyzer`]
    /// turns the ring into per-request latency breakdowns. Pass
    /// [`ObsRegistry::disabled`] for near-zero-cost instruments.
    pub fn open_with_obs(
        db: &'a Database,
        dir: impl AsRef<Path>,
        shards: usize,
        options: DurabilityOptions,
        obs: ObsRegistry,
    ) -> Result<Self, CoordError> {
        db.attach_obs(&obs);
        let evaluator = SccEvaluator::new(db);
        if let Some(cache) = evaluator.closure_cache() {
            cache.attach(&obs);
        }
        let inner = coord_store::DurableShardedEngine::open_with_obs(
            dir,
            evaluator,
            shards,
            EntangledQueryCodec,
            options,
            obs,
        )
        .map_err(store_err)?;
        Ok(DurableSharedEngine { db, inner })
    }

    /// Submit a query under its component shard's lock; the accepted
    /// mutation is logged before this returns.
    pub fn submit(&self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        let outcome = self.inner.submit(query).map_err(durable_err)?;
        Ok(SubmitResult {
            answers: outcome.delivery.unwrap_or_default(),
        })
    }

    /// Number of pending queries (across all shards).
    pub fn pending_count(&self) -> usize {
        self.inner.pending_count()
    }

    /// Clones of all pending queries.
    pub fn pending(&self) -> Vec<EntangledQuery> {
        self.inner.pending()
    }

    /// Total delivered answers.
    pub fn delivered(&self) -> usize {
        self.inner.delivered() as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Total maintained components across shards.
    pub fn component_count(&self) -> usize {
        self.inner.component_count()
    }

    /// Aggregated engine metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics().snapshot()
    }

    /// Per-shard load/contention statistics.
    pub fn shard_stats(&self) -> Vec<coord_engine::ShardStatsSnapshot> {
        self.inner.shard_stats()
    }

    /// One skew-correction pass over the sharded engine: detect a hot
    /// shard and move its costliest component groups to colder shards.
    /// Purely an in-memory placement change — commit records written
    /// after the move land on the new shard's WAL stream, and recovery
    /// re-routes the pending set regardless, so a crash at any point
    /// stays exactly recoverable.
    pub fn rebalance(&self) -> coord_engine::RebalanceReport {
        self.inner.rebalance()
    }

    /// Replace the rebalancer's tuning (and reset its load watermarks).
    pub fn set_rebalance_config(&self, config: coord_engine::RebalanceConfig) {
        self.inner.set_rebalance_config(config);
    }

    /// What recovery found when this engine was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        self.inner.recovery_report()
    }

    /// Durable-store counters (records, bytes, snapshots, epoch).
    pub fn store_stats(&self) -> StoreStatsSnapshot {
        self.inner.store().stats()
    }

    /// The observability registry threaded through the whole durable
    /// stack: `engine_*`/`store_*`/`memo_*` counters, submit and WAL
    /// latency histograms, and the trace ring. One
    /// [`ObsRegistry::snapshot`] covers engine, store, and cache.
    pub fn obs(&self) -> &ObsRegistry {
        self.inner.obs()
    }

    /// Clean end offset of every WAL stream (stream index = shard
    /// index) — the truncation points crash-fuzz tests cut at.
    pub fn wal_stream_lens(&self) -> Vec<u64> {
        self.inner.wal_stream_lens()
    }

    /// Snapshot the pending set now, rotating every shard's WAL to the
    /// next epoch. Safe under concurrent submits.
    pub fn snapshot(&self) -> Result<(), CoordError> {
        self.inner.snapshot().map_err(store_err)
    }

    /// The last background rotation failure, if any (cleared on read).
    /// Submits stay durable through the still-open WAL when a rotation
    /// fails.
    pub fn take_snapshot_error(&self) -> Option<CoordError> {
        self.inner.take_snapshot_error().map(store_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn roundtrip(q: &EntangledQuery) -> EntangledQuery {
        let codec = EntangledQueryCodec;
        let mut bytes = Vec::new();
        codec.encode(q, &mut bytes);
        codec.decode(&bytes).unwrap()
    }

    #[test]
    fn codec_roundtrips_the_running_example() {
        let q = QueryBuilder::new("gwyneth")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn codec_roundtrips_ints_strings_and_shared_vars() {
        let q = QueryBuilder::new("mixed")
            .postcondition("R", |a| a.constant(7i64).var("x").var("y"))
            .head("R", |a| a.constant("me").var("y"))
            .head("S", |a| a.var("x").constant(-3i64))
            .body("T", |a| a.var("x").var("y").constant("tag"))
            .build()
            .unwrap();
        let back = roundtrip(&q);
        assert_eq!(back, q);
        assert_eq!(back.var_count(), 2);
        assert_eq!(back.var_name(Var(0)), "x");
    }

    #[test]
    fn codec_is_deterministic() {
        let make = || {
            QueryBuilder::new("q")
                .head("R", |a| a.constant("u").var("v"))
                .body("S", |a| a.var("v").constant(1i64))
                .build()
                .unwrap()
        };
        let codec = EntangledQueryCodec;
        let (mut a, mut b) = (Vec::new(), Vec::new());
        codec.encode(&make(), &mut a);
        codec.encode(&make(), &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_garbage_and_trailing_bytes() {
        let codec = EntangledQueryCodec;
        assert!(codec.decode(&[1, 2, 3]).is_err());
        let q = QueryBuilder::new("q")
            .head("R", |a| a.constant(1i64))
            .build()
            .unwrap();
        let mut bytes = Vec::new();
        codec.encode(&q, &mut bytes);
        bytes.push(0);
        assert!(codec.decode(&bytes).is_err());
    }
}
