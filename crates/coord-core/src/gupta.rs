//! The Gupta et al. baseline (SIGMOD 2011): entangled-query evaluation for
//! sets that are both **safe** and **unique**.
//!
//! Under uniqueness, satisfying any query's coordination requirements
//! forces satisfying *all* of them, so the algorithm simply computes the
//! Most General Unifier over all queries (traversing the extended
//! coordination graph) and issues a single combined conjunctive query.
//! The paper reproduced here lifts the uniqueness requirement with the
//! SCC Coordination Algorithm; this baseline exists for comparison and as
//! the correctness anchor on safe+unique instances.

use crate::combined::{ground_members, unify_members};
use crate::error::CoordError;
use crate::graphs::{is_unique, safety_violations};
use crate::instance::QuerySet;
use crate::outcome::FoundSet;
use crate::query::EntangledQuery;
use crate::unify::Substitution;
use coord_db::Database;

/// Evaluate a safe and unique query set: all queries coordinate together
/// or none do.
///
/// Errors with [`CoordError::UnsafeSet`] / [`CoordError::NotUnique`] when
/// the preconditions fail (the situations the SCC algorithm handles).
pub fn gupta_coordinate(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<Option<FoundSet>, CoordError> {
    let qs = QuerySet::new(queries.to_vec());
    qs.validate(db)?;
    if qs.is_empty() {
        return Ok(None);
    }

    if let Some(v) = safety_violations(&qs).first() {
        let q = qs.query(v.query);
        return Err(CoordError::UnsafeSet {
            query: q.name().to_string(),
            postcondition: format!("{:?}", q.postconditions()[v.post_idx]),
        });
    }
    if !is_unique(&qs) {
        return Err(CoordError::NotUnique);
    }

    let members: Vec<_> = qs.ids().collect();
    let index = crate::graphs::HeadIndex::build(&qs);
    let subst = Substitution::identity(qs.total_vars());
    let Ok(mut subst) = unify_members(&qs, &members, subst, &index) else {
        return Ok(None);
    };
    Ok(
        ground_members(db, &qs, &members, &mut subst)?.map(|grounding| FoundSet {
            queries: members,
            grounding,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db
    }

    /// A safe+unique pair: Chris and Guy name each other.
    fn band_pair() -> Vec<EntangledQuery> {
        let chris = QueryBuilder::new("chris")
            .postcondition("R", |a| a.constant("Guy").var("x"))
            .head("R", |a| a.constant("Chris").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let guy = QueryBuilder::new("guy")
            .postcondition("R", |a| a.constant("Chris").var("y"))
            .head("R", |a| a.constant("Guy").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        vec![chris, guy]
    }

    #[test]
    fn safe_unique_pair_coordinates() {
        let db = db();
        let found = gupta_coordinate(&db, &band_pair()).unwrap().unwrap();
        assert_eq!(found.len(), 2);
        let qs = QuerySet::new(band_pair());
        check_coordinating_set(&db, &qs, &found.queries, &found.grounding).unwrap();
    }

    #[test]
    fn non_unique_set_rejected() {
        // Example 1: adding Gwyneth breaks uniqueness.
        let db = db();
        let mut queries = band_pair();
        queries.push(
            QueryBuilder::new("gwyneth")
                .postcondition("R", |a| a.constant("Chris").var("z"))
                .head("R", |a| a.constant("Gwyneth").var("z"))
                .body("Flights", |a| a.var("z").constant("Zurich"))
                .build()
                .unwrap(),
        );
        assert!(matches!(
            gupta_coordinate(&db, &queries),
            Err(CoordError::NotUnique)
        ));
    }

    #[test]
    fn no_flight_means_no_set() {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(1), Value::str("Oslo")])
            .unwrap();
        assert!(gupta_coordinate(&db, &band_pair()).unwrap().is_none());
    }

    #[test]
    fn empty_set_returns_none() {
        let db = db();
        assert!(gupta_coordinate(&db, &[]).unwrap().is_none());
    }

    #[test]
    fn agrees_with_scc_algorithm_on_safe_unique_inputs() {
        let db = db();
        let queries = band_pair();
        let gupta = gupta_coordinate(&db, &queries).unwrap();
        let scc = crate::scc::SccCoordinator::new(&db).run(&queries).unwrap();
        assert_eq!(
            gupta.map(|f| f.queries),
            scc.best().map(|f| f.queries.clone())
        );
    }
}
