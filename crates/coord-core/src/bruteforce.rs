//! Exhaustive (exponential) search for coordinating sets.
//!
//! This is the ground-truth solver used to validate the practical
//! algorithms on small instances and to *measure* the hardness separation
//! of Section 3: it enumerates candidate subsets `S ⊆ Q` and, within each
//! subset, all ways of matching postconditions to unifiable heads —
//! exactly the nondeterminism that makes `Entangled(Q_all)` NP-complete
//! (Theorem 1) even over a two-value database.

use crate::combined::ground_members;
use crate::error::CoordError;
use crate::instance::QuerySet;
use crate::outcome::FoundSet;
use crate::query::{EntangledQuery, QueryId};
use crate::semantics::Grounding;
use crate::unify::{atoms_unifiable, Substitution};
use coord_db::{Atom, Database};

/// Hard cap on instance size: the subset enumeration materializes 2^n
/// masks, so 20 queries (1M subsets) is the sensible ceiling. Public so
/// the SCC coordinator's small-instance fast path can cap its cutoff.
pub const MAX_QUERIES: usize = 20;

/// Result of an exhaustive search.
#[derive(Clone, Debug)]
pub struct BruteForceResult {
    /// A maximum-size coordinating set, if any exists.
    pub best: Option<FoundSet>,
    /// Number of subsets examined.
    pub subsets_checked: u64,
    /// Number of postcondition→head matchings attempted.
    pub matchings_tried: u64,
}

/// Find a **maximum-size** coordinating set by exhaustive search
/// (the `EntangledMax` problem of Definition 5 — NP-hard per Theorem 2,
/// hence the exponential strategy).
///
/// Panics if more than 25 queries are supplied.
pub fn max_coordinating_set(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<BruteForceResult, CoordError> {
    search(db, queries, false)
}

/// Decide whether **any** coordinating set exists (the `Entangled`
/// problem of Definition 4 — NP-complete per Theorem 1) and return one if
/// so. Stops at the first witness.
pub fn any_coordinating_set(
    db: &Database,
    queries: &[EntangledQuery],
) -> Result<BruteForceResult, CoordError> {
    search(db, queries, true)
}

fn search(
    db: &Database,
    queries: &[EntangledQuery],
    stop_at_first: bool,
) -> Result<BruteForceResult, CoordError> {
    assert!(
        queries.len() <= MAX_QUERIES,
        "brute force is limited to {MAX_QUERIES} queries (got {})",
        queries.len()
    );
    let qs = QuerySet::new(queries.to_vec());
    qs.validate(db)?;

    let n = qs.len();
    let mut result = BruteForceResult {
        best: None,
        subsets_checked: 0,
        matchings_tried: 0,
    };
    if n == 0 {
        return Ok(result);
    }

    // Enumerate non-empty subsets largest-first so that (a) EntangledMax
    // can stop as soon as a set of the current mask size is found when
    // sizes are scanned descending, and (b) Entangled tends to find
    // witnesses quickly on easy instances.
    let mut masks: Vec<u32> = (1..(1u32 << n)).collect();
    masks.sort_unstable_by_key(|m| std::cmp::Reverse(m.count_ones()));

    for mask in masks {
        let size = mask.count_ones() as usize;
        if let Some(best) = &result.best {
            if size <= best.len() {
                break; // masks are size-descending: nothing better remains
            }
        }
        let members: Vec<QueryId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(QueryId)
            .collect();
        result.subsets_checked += 1;
        if let Some(grounding) = coordinate_subset(db, &qs, &members, &mut result.matchings_tried)?
        {
            result.best = Some(FoundSet {
                queries: members,
                grounding,
            });
            if stop_at_first {
                break;
            }
        }
    }
    Ok(result)
}

/// Try to coordinate exactly the subset `members`: backtrack over all
/// assignments of each postcondition to a unifiable head within the
/// subset, grounding each consistent matching against the database.
pub fn coordinate_subset(
    db: &Database,
    qs: &QuerySet,
    members: &[QueryId],
    matchings_tried: &mut u64,
) -> Result<Option<Grounding>, CoordError> {
    // Collect (postcondition, candidate heads) pairs.
    let mut posts: Vec<(Atom, Vec<Atom>)> = Vec::new();
    let mut all_heads: Vec<Atom> = Vec::new();
    for &m in members {
        all_heads.extend(qs.heads(m));
    }
    for &m in members {
        for p in qs.postconditions(m) {
            let candidates: Vec<Atom> = all_heads
                .iter()
                .filter(|h| atoms_unifiable(&p, h))
                .cloned()
                .collect();
            if candidates.is_empty() {
                return Ok(None); // an unmatched postcondition dooms the subset
            }
            posts.push((p, candidates));
        }
    }

    // Depth-first over matching choices.
    fn descend(
        db: &Database,
        qs: &QuerySet,
        members: &[QueryId],
        posts: &[(Atom, Vec<Atom>)],
        level: usize,
        subst: &Substitution,
        matchings_tried: &mut u64,
    ) -> Result<Option<Grounding>, CoordError> {
        if level == posts.len() {
            *matchings_tried += 1;
            let mut s = subst.clone();
            return ground_members(db, qs, members, &mut s);
        }
        let (p, candidates) = &posts[level];
        for h in candidates {
            let mut s = subst.clone();
            if s.unify_atoms(p, h).is_err() {
                continue;
            }
            if let Some(g) = descend(db, qs, members, posts, level + 1, &s, matchings_tried)? {
                return Ok(Some(g));
            }
        }
        Ok(None)
    }

    let subst = Substitution::identity(qs.total_vars());
    descend(db, qs, members, &posts, 0, &subst, matchings_tried)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db.insert("Flights", vec![Value::int(102), Value::str("Paris")])
            .unwrap();
        db
    }

    #[test]
    fn finds_pair_and_verifies() {
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![q1, q2];
        let r = max_coordinating_set(&db, &queries).unwrap();
        let best = r.best.unwrap();
        assert_eq!(best.len(), 2);
        let qs = QuerySet::new(queries);
        check_coordinating_set(&db, &qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn unsafe_sets_are_handled() {
        // Two producers of R(Chris, ·) with different destinations and a
        // consumer: brute force must find a matching through the
        // compatible producer. Unsafe, so SCC algorithm refuses — this is
        // exactly the case that needs exhaustive matching enumeration.
        let p1 = QueryBuilder::new("p1")
            .head("R", |a| a.constant("Chris").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let p2 = QueryBuilder::new("p2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Paris"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |a| a.constant("Chris").var("z"))
            .head("R", |a| a.constant("Me").var("z"))
            .body("Flights", |a| a.var("z").constant("Paris"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![p1, p2, c];
        let r = max_coordinating_set(&db, &queries).unwrap();
        let best = r.best.unwrap();
        // All three can coordinate: c matches p2 (Paris flight 102), while
        // p1 rides along with Zurich flight 101.
        assert_eq!(best.len(), 3);
        let qs = QuerySet::new(queries);
        check_coordinating_set(&db, &qs, &best.queries, &best.grounding).unwrap();
    }

    #[test]
    fn no_set_when_bodies_unsatisfiable() {
        let q = QueryBuilder::new("q")
            .head("R", |a| a.constant("u").var("x"))
            .body("Flights", |a| a.var("x").constant("Nowhere"))
            .build()
            .unwrap();
        let db = db();
        let r = any_coordinating_set(&db, &[q]).unwrap();
        assert!(r.best.is_none());
        assert_eq!(r.subsets_checked, 1);
    }

    #[test]
    fn any_stops_at_first_witness() {
        let mk = |name: &str| {
            QueryBuilder::new(name)
                .head("R", |a| a.constant(name.to_string()).var("x"))
                .body("Flights", |a| a.var("x").constant("Zurich"))
                .build()
                .unwrap()
        };
        let db = db();
        let queries = vec![mk("a"), mk("b"), mk("c")];
        let r = any_coordinating_set(&db, &queries).unwrap();
        assert!(r.best.is_some());
        assert_eq!(r.subsets_checked, 1); // the full set works immediately
    }

    #[test]
    fn max_is_maximum_not_just_maximal() {
        // q_big needs an unsatisfiable partner; {a, b} is the max set.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("a").var("u"))
            .body("Flights", |x| x.var("u").constant("Zurich"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .postcondition("R", |x| x.constant("a").var("u"))
            .head("R", |x| x.constant("b").var("u"))
            .body("Flights", |x| x.var("u").constant("Zurich"))
            .build()
            .unwrap();
        let big = QueryBuilder::new("big")
            .postcondition("R", |x| x.constant("missing").var("v"))
            .head("R", |x| x.constant("big").var("v"))
            .body("Flights", |x| x.var("v").constant("Zurich"))
            .build()
            .unwrap();
        let db = db();
        let queries = vec![a, b, big];
        let r = max_coordinating_set(&db, &queries).unwrap();
        assert_eq!(r.best.unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "brute force is limited")]
    fn too_many_queries_panics() {
        let db = db();
        let queries: Vec<_> = (0..21)
            .map(|i| {
                QueryBuilder::new(format!("q{i}"))
                    .head("R", |a| a.constant(i64::from(i)).var("x"))
                    .body("Flights", |a| a.var("x").constant("Zurich"))
                    .build()
                    .unwrap()
            })
            .collect();
        let _ = max_coordinating_set(&db, &queries);
    }
}
