//! A parser for the paper's textual entangled-query syntax.
//!
//! The paper writes queries as `{P} H :- B`, e.g.
//!
//! ```text
//! q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
//! ```
//!
//! This module parses that notation into [`EntangledQuery`] values,
//! following the paper's naming convention: identifiers starting with an
//! **uppercase** letter (or written as quoted strings / integers) are
//! constants; identifiers starting with a **lowercase** letter are
//! variables. The empty body may be written `∅` or omitted entirely.
//! [`parse_query`] round-trips with the query's `Display` implementation.
//!
//! ```
//! use coord_core::parse::parse_query;
//!
//! let q = parse_query("q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)").unwrap();
//! assert_eq!(q.name(), "q1");
//! assert_eq!(q.postconditions().len(), 1);
//! assert_eq!(q.to_string(), "q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)");
//! ```

use crate::error::CoordError;
use crate::query::{EntangledQuery, QueryBuilder};
use std::fmt;

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Turnstile, // ":-"
    EmptySet,  // "∅"
}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
    tokens: Vec<(usize, Token)>,
}

impl<'a> Lexer<'a> {
    fn lex(input: &'a str) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut l = Lexer {
            input,
            pos: 0,
            tokens: Vec::new(),
        };
        l.run()?;
        Ok(l.tokens)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn run(&mut self) -> Result<(), ParseError> {
        while self.pos < self.input.len() {
            let rest = self.rest();
            let c = rest.chars().next().expect("non-empty rest");
            if c.is_whitespace() {
                self.pos += c.len_utf8();
                continue;
            }
            let start = self.pos;
            if rest.starts_with(":-") {
                self.tokens.push((start, Token::Turnstile));
                self.pos += 2;
            } else if rest.starts_with('∅') {
                self.tokens.push((start, Token::EmptySet));
                self.pos += '∅'.len_utf8();
            } else if let Some(tok) = Self::punct(c) {
                self.tokens.push((start, tok));
                self.pos += c.len_utf8();
            } else if c == '"' {
                self.lex_string()?;
            } else if c.is_ascii_digit()
                || (c == '-' && rest[1..].starts_with(|d: char| d.is_ascii_digit()))
            {
                self.lex_int()?;
            } else if c.is_alphanumeric() || c == '_' {
                self.lex_ident();
            } else {
                return Err(ParseError {
                    offset: start,
                    message: format!("unexpected character `{c}`"),
                });
            }
        }
        Ok(())
    }

    fn punct(c: char) -> Option<Token> {
        match c {
            '{' => Some(Token::LBrace),
            '}' => Some(Token::RBrace),
            '(' => Some(Token::LParen),
            ')' => Some(Token::RParen),
            ',' => Some(Token::Comma),
            ':' => Some(Token::Colon),
            _ => None,
        }
    }

    fn lex_string(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        for c in self.rest().chars() {
            self.pos += c.len_utf8();
            if c == '"' {
                self.tokens.push((start, Token::Str(out)));
                return Ok(());
            }
            out.push(c);
        }
        Err(ParseError {
            offset: start,
            message: "unterminated string".into(),
        })
    }

    fn lex_int(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        let mut end = self.pos;
        for (i, c) in self.rest().char_indices() {
            if (i == 0 && c == '-') || c.is_ascii_digit() {
                end = self.pos + i + c.len_utf8();
            } else {
                break;
            }
        }
        let text = &self.input[start..end];
        let value: i64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: format!("invalid integer `{text}`"),
        })?;
        self.tokens.push((start, Token::Int(value)));
        self.pos = end;
        Ok(())
    }

    fn lex_ident(&mut self) {
        let start = self.pos;
        let mut end = self.pos;
        for (i, c) in self.rest().char_indices() {
            if c.is_alphanumeric() || c == '_' || c == '*' {
                end = self.pos + i + c.len_utf8();
            } else {
                break;
            }
        }
        let text = self.input[start..end].to_string();
        self.tokens.push((start, Token::Ident(text)));
        self.pos = end;
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(o, _)| *o)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        let offset = self.offset();
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            other => Err(ParseError {
                offset,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// atoms := atom (',' atom)*   (stops before `:-` / `}`)
    fn atoms(&mut self, b: &mut Option<QueryBuilder>, kind: AtomKind) -> Result<usize, ParseError> {
        let mut count = 0;
        loop {
            self.atom(b, kind)?;
            count += 1;
            if !self.eat(&Token::Comma) {
                return Ok(count);
            }
        }
    }

    fn atom(&mut self, b: &mut Option<QueryBuilder>, kind: AtomKind) -> Result<(), ParseError> {
        let offset = self.offset();
        let relation = match self.next() {
            Some(Token::Ident(name)) => name,
            other => {
                return Err(ParseError {
                    offset,
                    message: format!("expected relation name, found {other:?}"),
                })
            }
        };
        self.expect(&Token::LParen, "`(`")?;
        // Collect argument tokens first, then feed the builder closure.
        let mut args: Vec<Arg> = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let offset = self.offset();
                match self.next() {
                    Some(Token::Ident(text)) => {
                        let first = text.chars().next().expect("non-empty ident");
                        if first.is_uppercase() {
                            args.push(Arg::Const(text));
                        } else {
                            args.push(Arg::Var(text));
                        }
                    }
                    Some(Token::Int(v)) => args.push(Arg::Int(v)),
                    Some(Token::Str(s)) => args.push(Arg::Const(s)),
                    other => {
                        return Err(ParseError {
                            offset,
                            message: format!("expected term, found {other:?}"),
                        })
                    }
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)`")?;

        let builder = b.take().expect("builder present");
        *b = Some(match kind {
            AtomKind::Postcondition => builder.postcondition(relation, |a| push_args(a, &args)),
            AtomKind::Head => builder.head(relation, |a| push_args(a, &args)),
            AtomKind::Body => builder.body(relation, |a| push_args(a, &args)),
        });
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum AtomKind {
    Postcondition,
    Head,
    Body,
}

enum Arg {
    Var(String),
    Const(String),
    Int(i64),
}

fn push_args<'b>(mut a: crate::query::AtomArgs<'b>, args: &[Arg]) -> crate::query::AtomArgs<'b> {
    for arg in args {
        a = match arg {
            Arg::Var(name) => a.var(name),
            Arg::Const(text) => a.constant(text.as_str()),
            Arg::Int(v) => a.constant(*v),
        };
    }
    a
}

/// Parse one entangled query from the paper's notation.
///
/// Grammar (whitespace-insensitive):
///
/// ```text
/// query  := [name ':'] '{' [atoms] '}' atoms [':-' (atoms | '∅')]
/// atom   := relation '(' [term {',' term}] ')'
/// term   := Ident | integer | '"' chars '"'
/// ```
///
/// Uppercase-initial identifiers and quoted strings are constants;
/// lowercase-initial identifiers are variables.
pub fn parse_query(input: &str) -> Result<EntangledQuery, CoordError> {
    parse_query_inner(input).map_err(|e| CoordError::Parse {
        message: e.to_string(),
    })
}

fn parse_query_inner(input: &str) -> Result<EntangledQuery, ParseError> {
    let tokens = Lexer::lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };

    // Optional leading `name :` (only when followed by a colon that is
    // not part of `:-`, which the lexer already distinguishes).
    let name = match (p.peek(), p.tokens.get(p.pos + 1).map(|(_, t)| t)) {
        (Some(Token::Ident(n)), Some(Token::Colon)) => {
            let n = n.clone();
            p.pos += 2;
            n
        }
        _ => "q".to_string(),
    };

    let mut builder = Some(QueryBuilder::new(name));

    // Postconditions.
    p.expect(&Token::LBrace, "`{`")?;
    if p.peek() != Some(&Token::RBrace) {
        p.atoms(&mut builder, AtomKind::Postcondition)?;
    }
    p.expect(&Token::RBrace, "`}`")?;

    // Heads.
    p.atoms(&mut builder, AtomKind::Head)?;

    // Optional body.
    if p.eat(&Token::Turnstile) && !p.eat(&Token::EmptySet) {
        p.atoms(&mut builder, AtomKind::Body)?;
    }

    if p.peek().is_some() {
        return Err(ParseError {
            offset: p.offset(),
            message: "trailing input after query".into(),
        });
    }

    builder
        .expect("builder present")
        .build()
        .map_err(|e| ParseError {
            offset: 0,
            message: e.to_string(),
        })
}

/// Parse a whole program: one query per non-empty, non-`//`-comment line.
pub fn parse_program(input: &str) -> Result<Vec<EntangledQuery>, CoordError> {
    input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .map(parse_query)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coord_db::{Term, Value};

    #[test]
    fn parses_the_running_example() {
        let q = parse_query("q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)").unwrap();
        assert_eq!(q.name(), "q1");
        assert_eq!(q.postconditions().len(), 1);
        assert_eq!(q.heads().len(), 1);
        assert_eq!(q.body().len(), 1);
        // Same variable shared across the three atoms.
        let pv = q.postconditions()[0].terms[1].as_var().unwrap();
        let hv = q.heads()[0].terms[1].as_var().unwrap();
        let bv = q.body()[0].terms[0].as_var().unwrap();
        assert_eq!(pv, hv);
        assert_eq!(hv, bv);
    }

    #[test]
    fn display_round_trip() {
        let text = "qG: {R(C, y1), Q(C, y2)} R(G, y1), Q(G, y2) :- F(y1, Paris), H(y2, Paris)";
        let q = parse_query(text).unwrap();
        assert_eq!(q.to_string(), text);
        // Parsing the rendering again yields an equal query.
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn empty_postconditions_and_body() {
        let q = parse_query("{} C(1)").unwrap();
        assert!(q.postconditions().is_empty());
        assert!(q.body().is_empty());
        let q2 = parse_query("{} C(1) :- ∅").unwrap();
        assert!(q2.body().is_empty());
    }

    #[test]
    fn integers_and_quoted_strings_are_constants() {
        let q = parse_query(r#"{} R(42, "New York", x) :- D(x)"#).unwrap();
        let terms = &q.heads()[0].terms;
        assert_eq!(terms[0], Term::Const(Value::int(42)));
        assert_eq!(terms[1], Term::Const(Value::str("New York")));
        assert!(terms[2].as_var().is_some());
    }

    #[test]
    fn negative_integers() {
        let q = parse_query("{} R(-7)").unwrap();
        assert_eq!(q.heads()[0].terms[0], Term::Const(Value::int(-7)));
    }

    #[test]
    fn case_determines_var_vs_const() {
        let q = parse_query("{} R(chris, Chris)").unwrap();
        assert!(q.heads()[0].terms[0].as_var().is_some());
        assert_eq!(q.heads()[0].terms[1], Term::Const(Value::str("Chris")));
    }

    #[test]
    fn reduction_style_names_with_star() {
        // Appendix B uses literal names like X*1.
        let q = parse_query("{R(y, S1)} R(x, X*1) :- Fl(x, OneMar)").unwrap();
        assert_eq!(q.heads()[0].terms[1], Term::Const(Value::str("X*1")));
    }

    #[test]
    fn errors_carry_position_and_message() {
        let err = parse_query("q1: {R(Chris, x)} :- F(x)").unwrap_err();
        assert!(err.to_string().contains("expected relation name"), "{err}");
        let err2 = parse_query("{R(x)} R(x) :- F(x) garbage(").unwrap_err();
        assert!(err2.to_string().contains("trailing") || err2.to_string().contains("expected"));
        let err3 = parse_query("{} R(\"unterminated)").unwrap_err();
        assert!(err3.to_string().contains("unterminated"), "{err3}");
    }

    #[test]
    fn parse_program_skips_comments_and_blanks() {
        let program = r"
            // the famous pair
            q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)

            q2: {} R(Chris, y) :- Flights(y, Zurich)
        ";
        let queries = parse_program(program).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].name(), "q1");
        assert_eq!(queries[1].name(), "q2");
    }

    #[test]
    fn parsed_queries_coordinate_end_to_end() {
        let mut db = coord_db::Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        let queries = parse_program(
            "q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)\n\
             q2: {} R(Chris, y) :- Flights(y, Zurich)",
        )
        .unwrap();
        let out = crate::scc::SccCoordinator::new(&db).run(&queries).unwrap();
        assert_eq!(out.best().unwrap().len(), 2);
    }
}
