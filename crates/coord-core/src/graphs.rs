//! Coordination graphs, safety, uniqueness, single-connectedness
//! (Section 2.3 and Definition 6).

use crate::instance::QuerySet;
use crate::query::QueryId;
use crate::unify::UnifyCounter;
use coord_db::{Atom, Symbol, Term, Value};
use coord_graph::index::{KeyPattern, PatternIndex};
use coord_graph::{condensation, reach, DiGraph, NodeId};

/// The index key of an atom: relation plus the first-argument constant
/// (`None` for a variable or zero-arity first argument, which matches
/// every bucket of the relation). Most entangled workloads write answer
/// atoms as `R(user, tuple)` with a constant user, so this bucketing
/// turns the quadratic all-pairs unifiability scans of graph
/// construction, safety checking and preprocessing into near-linear
/// lookups. Zero-arity atoms lose no precision by sharing the wildcard
/// bucket: candidates are confirmed positionally, and answer relations
/// have one arity across a set anyway.
pub fn atom_key(atom: &Atom) -> KeyPattern<Symbol, Value> {
    let first = match atom.terms.first() {
        Some(Term::Const(c)) => Some(c.clone()),
        Some(Term::Var(_)) | None => None,
    };
    (atom.relation.clone(), first)
}

/// An index over the head atoms of a query set: the batch-side
/// instantiation of the shared [`coord_graph::index`] layer, with
/// `(query, head position)` tokens.
pub struct HeadIndex {
    index: PatternIndex<Symbol, Value, (QueryId, usize)>,
}

impl HeadIndex {
    /// Index all heads of `qs` (query-local atoms).
    pub fn build(qs: &QuerySet) -> Self {
        let mut index = PatternIndex::new();
        for id in qs.ids() {
            for (hi, h) in qs.query(id).heads().iter().enumerate() {
                index.insert((id, hi), &atom_key(h));
            }
        }
        HeadIndex { index }
    }

    /// Candidate heads that *may* unify with postcondition `p` (callers
    /// still confirm with [`crate::unify::atoms_unifiable`], which checks every
    /// position).
    pub fn candidates(&self, p: &Atom) -> impl Iterator<Item = (QueryId, usize)> {
        let mut out = Vec::new();
        self.index.candidates_into(&atom_key(p), &mut out);
        out.into_iter()
    }

    /// Candidate heads for `p`, appended to `out`; returns the number of
    /// candidates examined (what the instrumented paths feed into a
    /// [`UnifyCounter`]).
    pub fn candidates_into(&self, p: &Atom, out: &mut Vec<(QueryId, usize)>) -> u64 {
        self.index.candidates_into(&atom_key(p), out)
    }
}

/// Label of an edge in the extended coordination graph: which
/// postcondition of the source query unifies with which head of the
/// target query (indices into the respective atom lists).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeLabel {
    /// Index of the postcondition atom in the source query.
    pub post_idx: usize,
    /// Index of the head atom in the target query.
    pub head_idx: usize,
}

/// Build the **extended coordination graph** (Section 2.3): a directed
/// multigraph with one node per query and an edge `(q, a_p) → (q', a_h)`
/// for every postcondition atom `a_p` of `q` that unifies with a head atom
/// `a_h` of `q'`.
pub fn extended_coordination_graph(qs: &QuerySet) -> DiGraph<QueryId, EdgeLabel> {
    extended_coordination_graph_counted(qs, &mut UnifyCounter::new())
}

/// [`extended_coordination_graph`], tallying every unifiability test
/// into `counter` — near-linear via the head index, where the all-pairs
/// sweep would perform Θ(posts × heads) tests.
pub fn extended_coordination_graph_counted(
    qs: &QuerySet,
    counter: &mut UnifyCounter,
) -> DiGraph<QueryId, EdgeLabel> {
    let index = HeadIndex::build(qs);
    let mut g: DiGraph<QueryId, EdgeLabel> = DiGraph::with_capacity(qs.len(), qs.len());
    for id in qs.ids() {
        g.add_node(id);
    }
    let mut cands: Vec<(QueryId, usize)> = Vec::new();
    for src in qs.ids() {
        let posts = qs.query(src).postconditions();
        for (pi, p) in posts.iter().enumerate() {
            cands.clear();
            index.candidates_into(p, &mut cands);
            for &(dst, hi) in &cands {
                let h = &qs.query(dst).heads()[hi];
                if counter.check(p, h) {
                    g.add_edge(
                        NodeId(src.index()),
                        NodeId(dst.index()),
                        EdgeLabel {
                            post_idx: pi,
                            head_idx: hi,
                        },
                    );
                }
            }
        }
    }
    g
}

/// Build the **coordination graph**: the extended graph with parallel
/// edges collapsed — an edge `(q, q')` whenever *some* postcondition of
/// `q` unifies with *some* head of `q'`.
pub fn coordination_graph(qs: &QuerySet) -> DiGraph<QueryId> {
    coordination_graph_counted(qs, &mut UnifyCounter::new())
}

/// [`coordination_graph`], tallying unifiability tests into `counter`.
pub fn coordination_graph_counted(qs: &QuerySet, counter: &mut UnifyCounter) -> DiGraph<QueryId> {
    let ext = extended_coordination_graph_counted(qs, counter);
    let mut g: DiGraph<QueryId> = DiGraph::with_capacity(qs.len(), ext.edge_count());
    for id in qs.ids() {
        g.add_node(id);
    }
    let mut seen = std::collections::HashSet::new();
    for e in ext.edge_ids() {
        let (u, v) = ext.endpoints(e);
        if seen.insert((u, v)) {
            g.add_edge(u, v, ());
        }
    }
    g
}

/// A safety violation: query `query`'s postcondition at `post_idx`
/// unifies with more than one head in the set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SafetyViolation {
    pub query: QueryId,
    pub post_idx: usize,
}

/// Check **safety** (Definition 2): every postcondition atom of every
/// query unifies with at most one head atom appearing in the set. Returns
/// all violations (empty = safe).
pub fn safety_violations(qs: &QuerySet) -> Vec<SafetyViolation> {
    safety_violations_counted(qs, &mut UnifyCounter::new())
}

/// [`safety_violations`], tallying unifiability tests into `counter`.
pub fn safety_violations_counted(
    qs: &QuerySet,
    counter: &mut UnifyCounter,
) -> Vec<SafetyViolation> {
    let index = HeadIndex::build(qs);
    let mut out = Vec::new();
    let mut cands: Vec<(QueryId, usize)> = Vec::new();
    for src in qs.ids() {
        for (pi, p) in qs.query(src).postconditions().iter().enumerate() {
            let mut matches = 0usize;
            cands.clear();
            index.candidates_into(p, &mut cands);
            for &(dst, hi) in &cands {
                if counter.check(p, &qs.query(dst).heads()[hi]) {
                    matches += 1;
                    if matches > 1 {
                        out.push(SafetyViolation {
                            query: src,
                            post_idx: pi,
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Whether the set is safe (Definition 2).
pub fn is_safe(qs: &QuerySet) -> bool {
    safety_violations(qs).is_empty()
}

/// Check **uniqueness** (Definition 3): in the coordination graph there is
/// a directed path between every two vertices — i.e. the graph is a single
/// strongly connected component. (Defined for safe sets; this function
/// checks the graph condition regardless.)
pub fn is_unique(qs: &QuerySet) -> bool {
    if qs.is_empty() {
        return true;
    }
    let g = coordination_graph(qs);
    condensation(&g).len() == 1
}

/// Check **single-connectedness** (Definition 6): every query has at most
/// one postcondition atom, and between every ordered pair of queries there
/// is at most one simple path in the coordination graph.
///
/// Returns `Err` with a human-readable reason on violation.
pub fn check_single_connected(qs: &QuerySet) -> Result<(), String> {
    for id in qs.ids() {
        let n = qs.query(id).postconditions().len();
        if n > 1 {
            return Err(format!(
                "query `{}` has {n} postcondition atoms (at most 1 allowed)",
                qs.query(id).name()
            ));
        }
    }
    let g = coordination_graph(qs);
    for u in g.node_ids() {
        for v in g.node_ids() {
            if u == v {
                continue;
            }
            if reach::count_simple_paths(&g, u, v, 1) > 1 {
                return Err(format!(
                    "more than one simple path from `{}` to `{}`",
                    qs.query(QueryId(u.index())).name(),
                    qs.query(QueryId(v.index())).name()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    /// The flight-hotel example of Section 2.2 (Figure 1).
    pub(crate) fn flight_hotel_queries() -> QuerySet {
        // qC: {R(G,x1)} R(C,x1), Q(C,x2) :- F(x1,x), H(x2,x)
        let qc = QueryBuilder::new("qC")
            .postcondition("R", |a| a.constant("G").var("x1"))
            .head("R", |a| a.constant("C").var("x1"))
            .head("Q", |a| a.constant("C").var("x2"))
            .body("F", |a| a.var("x1").var("x"))
            .body("H", |a| a.var("x2").var("x"))
            .build()
            .unwrap();
        // qG: {R(C,y1), Q(C,y2)} R(G,y1), Q(G,y2) :- F(y1,Paris), H(y2,Paris)
        let qg = QueryBuilder::new("qG")
            .postcondition("R", |a| a.constant("C").var("y1"))
            .postcondition("Q", |a| a.constant("C").var("y2"))
            .head("R", |a| a.constant("G").var("y1"))
            .head("Q", |a| a.constant("G").var("y2"))
            .body("F", |a| a.var("y1").constant("Paris"))
            .body("H", |a| a.var("y2").constant("Paris"))
            .build()
            .unwrap();
        // qJ: {R(C,z1), R(G,z1)} R(J,z1), Q(J,z2) :- F(z1,Athens), H(z2,Athens)
        let qj = QueryBuilder::new("qJ")
            .postcondition("R", |a| a.constant("C").var("z1"))
            .postcondition("R", |a| a.constant("G").var("z1"))
            .head("R", |a| a.constant("J").var("z1"))
            .head("Q", |a| a.constant("J").var("z2"))
            .body("F", |a| a.var("z1").constant("Athens"))
            .body("H", |a| a.var("z2").constant("Athens"))
            .build()
            .unwrap();
        // qW: {R(C,w1), Q(J,w2)} R(W,w1), Q(W,w2) :- F(w1,Madrid), H(w2,Madrid)
        let qw = QueryBuilder::new("qW")
            .postcondition("R", |a| a.constant("C").var("w1"))
            .postcondition("Q", |a| a.constant("J").var("w2"))
            .head("R", |a| a.constant("W").var("w1"))
            .head("Q", |a| a.constant("W").var("w2"))
            .body("F", |a| a.var("w1").constant("Madrid"))
            .body("H", |a| a.var("w2").constant("Madrid"))
            .build()
            .unwrap();
        QuerySet::new(vec![qc, qg, qj, qw])
    }

    #[test]
    fn flight_hotel_coordination_graph_matches_figure() {
        // The paper's collapsed coordination graph (Section 2.3):
        //   qW → qJ, qW → qC, qJ → qG, qJ → qC, qG → qC, qC → qG.
        let qs = flight_hotel_queries();
        let g = coordination_graph(&qs);
        let has = |from: usize, to: usize| g.has_edge(NodeId(from), NodeId(to));
        // Order: qC=0, qG=1, qJ=2, qW=3.
        assert!(has(0, 1), "qC → qG");
        assert!(has(1, 0), "qG → qC");
        assert!(has(2, 0), "qJ → qC");
        assert!(has(2, 1), "qJ → qG");
        assert!(has(3, 0), "qW → qC");
        assert!(has(3, 2), "qW → qJ");
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn flight_hotel_extended_graph_edge_count() {
        // Figure 2: qC has 1 postcondition unifying with qG's head;
        // qG has 2 (R and Q) to qC; qJ has R(C,·)→qC and R(G,·)→qG;
        // qW has R(C,·)→qC and Q(J,·)→qJ. Total 7 labelled edges.
        let qs = flight_hotel_queries();
        let g = extended_coordination_graph(&qs);
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn flight_hotel_is_safe_not_unique() {
        let qs = flight_hotel_queries();
        assert!(is_safe(&qs));
        // qW and qJ cannot be reached from qC/qG: not unique.
        assert!(!is_unique(&qs));
    }

    #[test]
    fn gwyneth_makes_band_unsafe() {
        // Example 1: band members coordinate pairwise (safe+unique);
        // adding Gwyneth's request to fly with Chris breaks uniqueness of
        // the head match for postconditions on R(C, ·)... i.e. safety of
        // queries pointing at Chris still holds (one head per user), but
        // *Chris's* postcondition now stays unique while Gwyneth's query
        // is a second query, making the set non-unique. The classic
        // encoding: both Gwyneth and Guy post R(C, ·) postconditions and
        // Chris posts one head — still safe. Uniqueness fails because
        // nothing points back at Gwyneth.
        let chris = QueryBuilder::new("chris")
            .postcondition("R", |a| a.constant("Guy").var("x"))
            .head("R", |a| a.constant("Chris").var("x"))
            .body("F", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let guy = QueryBuilder::new("guy")
            .postcondition("R", |a| a.constant("Chris").var("y"))
            .head("R", |a| a.constant("Guy").var("y"))
            .body("F", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![chris.clone(), guy.clone()]);
        assert!(is_safe(&qs));
        assert!(is_unique(&qs));

        let gwyneth = QueryBuilder::new("gwyneth")
            .postcondition("R", |a| a.constant("Chris").var("z"))
            .head("R", |a| a.constant("Gwyneth").var("z"))
            .body("F", |a| a.var("z").constant("Zurich"))
            .build()
            .unwrap();
        let qs3 = QuerySet::new(vec![chris, guy, gwyneth]);
        assert!(is_safe(&qs3));
        assert!(!is_unique(&qs3), "Gwyneth breaks uniqueness (Example 1)");
    }

    #[test]
    fn two_heads_for_one_postcondition_is_unsafe() {
        // Two queries both produce R(Chris, ·); a third requires it.
        let a = QueryBuilder::new("a")
            .head("R", |x| x.constant("Chris").var("u"))
            .body("F", |x| x.var("u").constant("Zurich"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("Chris").var("v"))
            .body("F", |x| x.var("v").constant("Paris"))
            .build()
            .unwrap();
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("Chris").var("w"))
            .head("R", |x| x.constant("Me").var("w"))
            .body("F", |x| x.var("w").constant("Zurich"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![a, b, c]);
        let v = safety_violations(&qs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].query, QueryId(2));
        assert_eq!(v[0].post_idx, 0);
        assert!(!is_safe(&qs));
    }

    #[test]
    fn single_connectedness_checks() {
        // A chain with single postconditions is single-connected.
        let a = QueryBuilder::new("a")
            .postcondition("R", |x| x.constant("b").var("u"))
            .head("R", |x| x.constant("a").var("u"))
            .build()
            .unwrap();
        let b = QueryBuilder::new("b")
            .head("R", |x| x.constant("b").var("v"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![a, b]);
        assert!(check_single_connected(&qs).is_ok());

        // Two postconditions violate the first condition.
        let c = QueryBuilder::new("c")
            .postcondition("R", |x| x.constant("a").var("w"))
            .postcondition("R", |x| x.constant("b").var("w"))
            .head("R", |x| x.constant("c").var("w"))
            .build()
            .unwrap();
        let qs2 = QuerySet::new(vec![c]);
        assert!(check_single_connected(&qs2).is_err());
    }

    #[test]
    fn empty_set_is_safe_and_unique() {
        let qs = QuerySet::new(Vec::new());
        assert!(is_safe(&qs));
        assert!(is_unique(&qs));
    }
}
