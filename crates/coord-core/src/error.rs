//! Errors raised by the coordination layer.

use coord_db::DbError;
use std::fmt;

/// Errors from query construction, validation, and the coordination
/// algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// An underlying database error.
    Db(DbError),
    /// A query was built without a head atom.
    EmptyHead { query: String },
    /// A body atom used a relation that is not in the database schema
    /// (syntax requirement (i) of Section 2.1).
    BodyRelationMissing { query: String, relation: String },
    /// A head or postcondition atom used a relation that *is* in the
    /// database schema (syntax requirement (ii): answer relations must be
    /// disjoint from the schema).
    AnswerRelationInSchema { query: String, relation: String },
    /// Answer atoms of the same relation appear with different arities.
    AnswerArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// The query set is unsafe (Definition 2) but the invoked algorithm
    /// requires safety. Reports one offending query and postcondition.
    UnsafeSet {
        query: String,
        postcondition: String,
    },
    /// The query set is not unique (Definition 3) but the invoked
    /// algorithm (the Gupta et al. baseline) requires uniqueness.
    NotUnique,
    /// The query set is not single-connected (Definition 6) but the
    /// single-connected solver was invoked.
    NotSingleConnected { reason: String },
    /// A consistent-coordination query referenced an attribute missing
    /// from the configured table.
    UnknownCoordAttribute { attribute: String },
    /// A consistent-coordination feature has no entangled-query encoding
    /// (the paper notes "coordinate with k friends" is not expressible in
    /// the entangled syntax).
    NotExpressible { feature: String },
    /// Textual query syntax could not be parsed.
    Parse { message: String },
    /// The durable store failed (I/O, corruption, or a record that
    /// framed cleanly but did not decode).
    Store { message: String },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Db(e) => write!(f, "database error: {e}"),
            CoordError::EmptyHead { query } => {
                write!(f, "query `{query}` has no head atoms")
            }
            CoordError::BodyRelationMissing { query, relation } => write!(
                f,
                "query `{query}` uses body relation `{relation}` not present in the database schema"
            ),
            CoordError::AnswerRelationInSchema { query, relation } => write!(
                f,
                "query `{query}` uses answer relation `{relation}` that clashes with a database relation"
            ),
            CoordError::AnswerArityMismatch { relation, expected, actual } => write!(
                f,
                "answer relation `{relation}` used with arity {actual}, expected {expected}"
            ),
            CoordError::UnsafeSet { query, postcondition } => write!(
                f,
                "query set is unsafe: postcondition {postcondition} of query `{query}` unifies with more than one head"
            ),
            CoordError::NotUnique => {
                write!(f, "query set is not unique (coordination graph is not strongly connected)")
            }
            CoordError::NotSingleConnected { reason } => {
                write!(f, "query set is not single-connected: {reason}")
            }
            CoordError::UnknownCoordAttribute { attribute } => {
                write!(f, "unknown coordination attribute `{attribute}`")
            }
            CoordError::NotExpressible { feature } => {
                write!(f, "{feature} is not expressible in entangled-query syntax")
            }
            CoordError::Parse { message } => write!(f, "{message}"),
            CoordError::Store { message } => write!(f, "durable store error: {message}"),
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbError> for CoordError {
    fn from(e: DbError) -> Self {
        CoordError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoordError::UnsafeSet {
            query: "qW".into(),
            postcondition: "R(C, w1)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("qW") && s.contains("R(C, w1)"));
    }

    #[test]
    fn db_error_wraps() {
        let e: CoordError = DbError::UnknownRelation {
            relation: "X".into(),
        }
        .into();
        assert!(matches!(e, CoordError::Db(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
