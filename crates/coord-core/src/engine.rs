//! A Youtopia-style online coordination engine (Section 6.1's system
//! context and the on-line setting raised in Section 7).
//!
//! The paper's prototype runs inside the Youtopia system: "when a new
//! query arrives, the system finds the set of queries this query can
//! coordinate with and updates the coordination graph accordingly. The
//! system then calls an evaluation method on the connected component that
//! the query belongs to" — and deletes answered queries afterwards.
//!
//! This module is now a thin adapter over the [`coord_engine`] service
//! crate, which maintains that loop *incrementally*: a persistent atom
//! index finds candidate partners without pairing against all pending
//! queries, and a union-find component index is updated on submit and
//! retire instead of being recomputed. [`CoordinationEngine`] keeps the
//! original single-submitter API on top of
//! [`coord_engine::IncrementalEngine`]; [`SharedEngine`] keeps the
//! thread-safe facade but is now backed by
//! [`coord_engine::ShardedEngine`], so submitters touching disjoint
//! components proceed concurrently instead of serializing behind one
//! mutex. [`RebuildEngine`] preserves the pre-incremental
//! full-rebuild-per-submit behavior as the baseline the
//! `online_throughput` bench (and the property tests) compare against.

use crate::differential::{digest_query, ClosureCache, MemoStats};
use crate::error::CoordError;
use crate::graphs::coordination_graph;
use crate::instance::QuerySet;
use crate::query::{EntangledQuery, QueryId};
use crate::scc::SccCoordinator;
use crate::semantics::Grounding;
use coord_db::{Atom, Database, Symbol, Term, Value};
use coord_engine::lockrank::{self, LockRank};
use coord_engine::{ComponentEvaluator, CoordinationQuery, IncrementalEngine, ShardedEngine};
use coord_graph::reach::weakly_connected_components;
use coord_obs::Registry as ObsRegistry;
use parking_lot::Mutex;
use std::sync::Arc;

pub use coord_engine::{
    EngineMetrics, MetricsSnapshot, Placement, RebalanceConfig, RebalanceReport, Rebalancer,
    ShardStatsSnapshot,
};

/// Components at or below this size are evaluated with the exhaustive
/// search instead of the full SCC algorithm — the regime where the
/// `ablation_scc_vs_bruteforce` bench shows brute force winning (12µs vs
/// 30µs at n = 6). Online components are mostly tiny, so this is the
/// engine's common case.
pub const SMALL_COMPONENT_CUTOFF: usize = 6;

/// An answer delivered to a coordinated query: for each variable, its
/// chosen value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The answered query's name.
    pub query: String,
    /// (variable name, value) pairs in variable order.
    pub bindings: Vec<(String, Value)>,
}

/// Result of submitting a query to the engine.
#[derive(Clone, Debug, Default)]
pub struct SubmitResult {
    /// Answers for every query of the coordinating set found (possibly
    /// including queries submitted earlier), or empty if the new query
    /// stays pending.
    pub answers: Vec<QueryAnswer>,
}

impl SubmitResult {
    /// Whether a coordinating set was found and delivered.
    pub fn coordinated(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// The key pattern of an answer atom: its relation plus the first
/// argument when it is a constant (the coordination-attribute position of
/// the common `R(user, tuple)` shape), or a wildcard otherwise.
fn key_pattern(atom: &Atom) -> (Symbol, Option<Value>) {
    match atom.terms.first() {
        Some(Term::Const(c)) => (atom.relation.clone(), Some(c.clone())),
        _ => (atom.relation.clone(), None),
    }
}

impl CoordinationQuery for EntangledQuery {
    type Rel = Symbol;
    type Cst = Value;

    fn provides(&self) -> Vec<(Symbol, Option<Value>)> {
        self.heads().iter().map(key_pattern).collect()
    }

    fn requires(&self) -> Vec<(Symbol, Option<Value>)> {
        self.postconditions().iter().map(key_pattern).collect()
    }
}

/// The component evaluator wiring the SCC Coordination Algorithm (with
/// the small-instance brute-force fast path) into the service crate.
///
/// By default it carries a shared [`ClosureCache`]: component closures
/// whose member contents were already decided against this database are
/// answered from the cache, and re-evaluating a component after a
/// single-query delta touches only the affected closures. Clones (one
/// per shard in the sharded engine) share the cache through an [`Arc`],
/// so component migration between shards never loses or stales it —
/// the keys are content digests, valid on every shard.
#[derive(Clone)]
pub struct SccEvaluator<'a> {
    db: &'a Database,
    cache: Option<Arc<ClosureCache>>,
}

impl<'a> SccEvaluator<'a> {
    /// An evaluator over the given database, with differential
    /// evaluation and a fresh cross-run closure cache.
    pub fn new(db: &'a Database) -> Self {
        SccEvaluator {
            db,
            cache: Some(Arc::new(ClosureCache::new())),
        }
    }

    /// An evaluator with no memoization at all: every component is
    /// re-unified and re-ground from scratch on every evaluation. The
    /// oracle baseline the differential equivalence suite compares the
    /// default evaluator against.
    pub fn memo_free(db: &'a Database) -> Self {
        SccEvaluator { db, cache: None }
    }

    /// Closure-cache counters, if this evaluator memoizes.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The shared closure cache, if this evaluator memoizes (used to
    /// attach the cache's counters to an observability registry).
    pub fn closure_cache(&self) -> Option<&Arc<ClosureCache>> {
        self.cache.as_ref()
    }
}

impl ComponentEvaluator<EntangledQuery> for SccEvaluator<'_> {
    type Delivery = Vec<QueryAnswer>;
    type Error = CoordError;

    fn evaluate(
        &self,
        queries: &[EntangledQuery],
    ) -> Result<Option<(Vec<usize>, Vec<QueryAnswer>)>, CoordError> {
        let coordinator =
            SccCoordinator::new(self.db).with_bruteforce_cutoff(SMALL_COMPONENT_CUTOFF);
        let coordinator = match &self.cache {
            Some(cache) => coordinator.with_closure_cache(Arc::clone(cache)),
            None => coordinator.with_from_scratch_evaluation(),
        };
        let outcome = coordinator.run(queries)?;
        let Some(best) = outcome.best() else {
            return Ok(None);
        };
        let answers = best
            .queries
            .iter()
            .map(|&q| answer_for(&outcome.qs, q, &best.grounding))
            .collect();
        let members = best.queries.iter().map(|q| q.index()).collect();
        Ok(Some((members, answers)))
    }

    fn note_departed(&self, queries: &[EntangledQuery]) {
        // Retired queries never reappear in a closure, so their cache
        // entries can only waste capacity — drop them eagerly. Content
        // addressing keeps this an optimization, never a correctness
        // requirement.
        if let Some(cache) = &self.cache {
            let departed: Vec<u128> = queries.iter().map(digest_query).collect();
            cache.evict_members(&departed);
        }
    }
}

/// The online evaluation loop: buffer queries, evaluate the affected
/// connected component on each arrival, deliver and retire coordinated
/// queries. Coordination state (atom index, components) is maintained
/// incrementally across submits.
pub struct CoordinationEngine<'a> {
    db: &'a Database,
    inner: IncrementalEngine<EntangledQuery, SccEvaluator<'a>>,
    cache: Option<Arc<ClosureCache>>,
}

impl<'a> CoordinationEngine<'a> {
    /// An engine over the given database.
    pub fn new(db: &'a Database) -> Self {
        let evaluator = SccEvaluator::new(db);
        let cache = evaluator.cache.clone();
        CoordinationEngine {
            db,
            inner: IncrementalEngine::new(evaluator),
            cache,
        }
    }

    /// An engine whose evaluator never memoizes (see
    /// [`SccEvaluator::memo_free`]) — byte-identical answers, used as
    /// the oracle in the differential equivalence suite.
    pub fn memo_free(db: &'a Database) -> Self {
        CoordinationEngine {
            db,
            inner: IncrementalEngine::new(SccEvaluator::memo_free(db)),
            cache: None,
        }
    }

    /// Closure-cache counters, if this engine's evaluator memoizes.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Queries currently buffered (unsatisfied coordination requirements).
    pub fn pending(&self) -> Vec<&EntangledQuery> {
        self.inner.pending().collect()
    }

    /// Total queries answered and retired so far.
    pub fn delivered(&self) -> usize {
        self.inner.delivered() as usize
    }

    /// The engine's incremental-maintenance metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics().snapshot()
    }

    /// Number of incrementally maintained components over the pending
    /// queries.
    pub fn component_count(&self) -> usize {
        self.inner.component_count()
    }

    /// Submit a new query: update the coordination state, evaluate the
    /// component the query belongs to, and — if a coordinating set is
    /// found there — deliver answers and delete those queries from the
    /// buffer.
    ///
    /// If the new query makes its component unsafe, the query is rejected
    /// and the error returned; previously pending queries are unaffected.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        let outcome = self.inner.submit(query)?;
        Ok(SubmitResult {
            answers: outcome.delivery.unwrap_or_default(),
        })
    }

    /// Submit a batch of queries, collecting every delivered answer.
    pub fn submit_all(
        &mut self,
        queries: impl IntoIterator<Item = EntangledQuery>,
    ) -> Result<Vec<QueryAnswer>, CoordError> {
        let mut out = Vec::new();
        for q in queries {
            out.extend(self.submit(q)?.answers);
        }
        Ok(out)
    }

    /// Check the engine's internal invariants (slab/index/component
    /// consistency); panics with a description on violation.
    pub fn validate_invariants(&mut self) {
        self.inner.validate_invariants();
    }
}

fn answer_for(qs: &QuerySet, q: QueryId, grounding: &Grounding) -> QueryAnswer {
    let query = qs.query(q);
    let mut bindings = Vec::with_capacity(query.var_count() as usize);
    for local in 0..query.var_count() {
        let v = coord_db::Var(local);
        let g = qs.global_var(q, v);
        if let Some(value) = grounding.get(g) {
            bindings.push((query.var_name(v).to_string(), value.clone()));
        }
    }
    QueryAnswer {
        query: query.name().to_string(),
        bindings,
    }
}

/// A thread-safe facade over the coordination engine for concurrent
/// submitters (e.g. a server front end). Backed by the sharded service:
/// each component shard has its own lock, so submitters touching
/// disjoint components make concurrent progress.
pub struct SharedEngine<'a> {
    db: &'a Database,
    inner: ShardedEngine<EntangledQuery, SccEvaluator<'a>>,
    rebalancer: Mutex<Rebalancer>,
    cache: Option<Arc<ClosureCache>>,
}

impl<'a> SharedEngine<'a> {
    /// An engine with one shard per available CPU (capped at 16).
    pub fn new(db: &'a Database) -> Self {
        let shards = std::thread::available_parallelism()
            .map_or(4, std::num::NonZero::get)
            .clamp(1, 16);
        Self::with_shards(db, shards)
    }

    /// An engine with an explicit shard count (least-loaded placement,
    /// default rebalance tuning).
    pub fn with_shards(db: &'a Database, shards: usize) -> Self {
        Self::with_config(db, shards, Placement::default(), RebalanceConfig::default())
    }

    /// An engine with explicit shard count, placement policy, and
    /// rebalance tuning (and its own enabled observability registry).
    pub fn with_config(
        db: &'a Database,
        shards: usize,
        placement: Placement,
        rebalance: RebalanceConfig,
    ) -> Self {
        Self::with_obs(db, shards, placement, rebalance, ObsRegistry::new())
    }

    /// An engine recording into an explicit observability registry —
    /// pass [`ObsRegistry::disabled`] to compile every histogram, trace
    /// event, and export hook down to a branch per call (the overhead
    /// gate in `online_throughput` holds the enabled/disabled gap under
    /// 5%). The closure cache's `memo_*` counters are registered too,
    /// so one snapshot covers engine and memoization.
    pub fn with_obs(
        db: &'a Database,
        shards: usize,
        placement: Placement,
        rebalance: RebalanceConfig,
        obs: ObsRegistry,
    ) -> Self {
        let evaluator = SccEvaluator::new(db);
        let cache = evaluator.cache.clone();
        if let Some(cache) = &cache {
            cache.attach(&obs);
        }
        SharedEngine {
            db,
            inner: ShardedEngine::with_obs(evaluator, shards, placement, obs),
            rebalancer: Mutex::new(Rebalancer::new(rebalance)),
            cache,
        }
    }

    /// An engine whose shards never memoize (see
    /// [`SccEvaluator::memo_free`]) — the oracle configuration of the
    /// differential equivalence suite.
    pub fn memo_free(db: &'a Database, shards: usize) -> Self {
        SharedEngine {
            db,
            inner: ShardedEngine::with_placement(
                SccEvaluator::memo_free(db),
                shards,
                Placement::default(),
            ),
            rebalancer: Mutex::new(Rebalancer::new(RebalanceConfig::default())),
            cache: None,
        }
    }

    /// Closure-cache counters (shared across all shards), if this
    /// engine memoizes.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// One skew-correction pass: detect a hot shard from the per-shard
    /// load windows and move its costliest component groups to colder
    /// shards via the marker-based migration protocol. Safe to call
    /// from any thread at any time — rebalancing never changes a
    /// coordination result (see `tests/equivalence_props.rs`).
    // lint: acquires(migration_lock, router, shard.engine)
    pub fn rebalance(&self) -> RebalanceReport {
        lockrank::ranked(LockRank::Rebalancer, self.rebalancer.lock()).run(&self.inner)
    }

    /// Submit a query under its component shard's lock.
    pub fn submit(&self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        let outcome = self.inner.submit(query)?;
        Ok(SubmitResult {
            answers: outcome.delivery.unwrap_or_default(),
        })
    }

    /// Submit a batch of queries, acquiring the routing table once for
    /// the whole batch instead of twice per query (amortizes routing for
    /// high-throughput front ends). Per-query results in input order.
    /// Directly routable queries of one component keep their relative
    /// order; a batch member that bridges shards is deferred behind the
    /// directly routable ones, so batch ≡ sequential is guaranteed when
    /// the batch's components are disjoint or already co-sharded (see
    /// `ShardedEngine::submit_batch`).
    pub fn submit_batch(
        &self,
        queries: Vec<EntangledQuery>,
    ) -> Vec<Result<SubmitResult, CoordError>> {
        let n = queries.len();
        let mut invalid: Vec<(usize, CoordError)> = Vec::new();
        let mut valid_idx: Vec<usize> = Vec::with_capacity(n);
        let mut batch: Vec<EntangledQuery> = Vec::with_capacity(n);
        for (i, q) in queries.into_iter().enumerate() {
            match q.validate(self.db) {
                Ok(()) => {
                    valid_idx.push(i);
                    batch.push(q);
                }
                Err(e) => invalid.push((i, e)),
            }
        }
        let outcomes = self.inner.submit_batch(batch);
        let mut results: Vec<Option<Result<SubmitResult, CoordError>>> =
            (0..n).map(|_| None).collect();
        for (i, outcome) in valid_idx.into_iter().zip(outcomes) {
            results[i] = Some(outcome.map(|o| SubmitResult {
                answers: o.delivery.unwrap_or_default(),
            }));
        }
        for (i, e) in invalid {
            results[i] = Some(Err(e));
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect()
    }

    /// Number of pending queries (across all shards).
    pub fn pending_count(&self) -> usize {
        self.inner.pending_count()
    }

    /// Clones of all pending queries (a moving snapshot under
    /// concurrent submits).
    pub fn pending(&self) -> Vec<EntangledQuery> {
        self.inner.pending()
    }

    /// Total delivered answers.
    pub fn delivered(&self) -> usize {
        self.inner.delivered() as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Aggregated engine metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics().snapshot()
    }

    /// Per-shard submit/contention statistics.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.inner.shard_stats()
    }

    /// The observability registry this engine records into: `engine_*`
    /// counters, submit/lock-wait/migration/rebalance histograms,
    /// `memo_*` cache counters, and the trace ring.
    pub fn obs(&self) -> &ObsRegistry {
        self.inner.obs()
    }
}

/// The pre-incremental engine: rebuilds the entire coordination graph
/// over all pending queries on every submit and evaluates the new
/// query's weakly connected component. Kept as the baseline the
/// `online_throughput` bench and the engine property tests compare the
/// incremental path against. Uses the same evaluation configuration
/// (SCC algorithm with the small-instance cutoff) so the two paths are
/// behaviorally identical on workloads whose key-level candidates match
/// exactly the unifiable pairs.
pub struct RebuildEngine<'a> {
    db: &'a Database,
    pending: Vec<EntangledQuery>,
    delivered: usize,
    queries_examined: u64,
}

impl<'a> RebuildEngine<'a> {
    /// An engine over the given database.
    pub fn new(db: &'a Database) -> Self {
        RebuildEngine {
            db,
            pending: Vec::new(),
            delivered: 0,
            queries_examined: 0,
        }
    }

    /// Queries currently buffered.
    pub fn pending(&self) -> &[EntangledQuery] {
        &self.pending
    }

    /// Total queries answered and retired so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Cumulative pending queries examined across submits — the graph is
    /// rebuilt over *all* pending queries per submit, so this grows
    /// quadratically in steady pending size (what the incremental engine
    /// avoids; compare with `MetricsSnapshot::queries_evaluated`).
    pub fn queries_examined(&self) -> u64 {
        self.queries_examined
    }

    /// Submit a new query: rebuild the coordination graph from scratch,
    /// evaluate the new query's component, deliver and retire on success.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        self.pending.push(query);
        let new_idx = self.pending.len() - 1;
        self.queries_examined += self.pending.len() as u64;

        // Full rebuild: the coordination graph over every pending query.
        let qs = QuerySet::new(self.pending.clone());
        let graph = coordination_graph(&qs);
        let comps = weakly_connected_components(&graph);
        let component: Vec<usize> = comps
            .into_iter()
            .find(|c| c.iter().any(|n| n.index() == new_idx))
            .expect("new query must be in some component")
            .into_iter()
            .map(coord_graph::NodeId::index)
            .collect();

        let comp_queries: Vec<EntangledQuery> =
            component.iter().map(|&i| self.pending[i].clone()).collect();

        let outcome = match SccCoordinator::new(self.db)
            .with_bruteforce_cutoff(SMALL_COMPONENT_CUTOFF)
            .with_from_scratch_evaluation()
            .run(&comp_queries)
        {
            Ok(o) => o,
            Err(e) => {
                // Reject the offending submission, keep earlier queries.
                self.pending.pop();
                return Err(e);
            }
        };

        let Some(best) = outcome.best() else {
            return Ok(SubmitResult::default());
        };

        // Build answers (variable names resolved per query).
        let comp_qs = QuerySet::new(comp_queries.clone());
        let mut answers = Vec::with_capacity(best.queries.len());
        for &q in &best.queries {
            answers.push(answer_for(&comp_qs, q, &best.grounding));
        }

        // Retire the coordinated queries from the buffer (descending
        // pending-index order keeps removal indices valid).
        let mut to_remove: Vec<usize> = best.queries.iter().map(|q| component[q.index()]).collect();
        to_remove.sort_unstable_by(|a, b| b.cmp(a));
        for i in to_remove {
            self.pending.remove(i);
        }
        self.delivered += answers.len();
        Ok(SubmitResult { answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db
    }

    fn gwyneth() -> EntangledQuery {
        QueryBuilder::new("gwyneth")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap()
    }

    fn chris() -> EntangledQuery {
        QueryBuilder::new("chris")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap()
    }

    #[test]
    fn coordination_happens_on_second_arrival() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        // Gwyneth arrives first: she needs Chris, so she waits.
        let r1 = engine.submit(gwyneth()).unwrap();
        assert!(!r1.coordinated());
        assert_eq!(engine.pending().len(), 1);
        // Chris arrives: both coordinate and are retired.
        let r2 = engine.submit(chris()).unwrap();
        assert!(r2.coordinated());
        assert_eq!(r2.answers.len(), 2);
        assert_eq!(engine.pending().len(), 0);
        assert_eq!(engine.delivered(), 2);
        // Both got flight 101.
        for a in &r2.answers {
            assert_eq!(a.bindings[0].1, Value::int(101));
        }
    }

    #[test]
    fn chris_alone_coordinates_immediately() {
        // Chris has no postconditions: a singleton coordinating set.
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        let r = engine.submit(chris()).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.answers[0].query, "chris");
    }

    #[test]
    fn unrelated_pending_queries_are_untouched() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        engine.submit(gwyneth()).unwrap();
        // An unrelated waiting query in a different component.
        let waiting = QueryBuilder::new("waiting")
            .postcondition("S", |a| a.constant("nobody").var("z"))
            .head("S", |a| a.constant("waiting").var("z"))
            .body("Flights", |a| a.var("z").constant("Zurich"))
            .build()
            .unwrap();
        let r = engine.submit(waiting).unwrap();
        assert!(!r.coordinated());
        assert_eq!(engine.pending().len(), 2);
        assert_eq!(engine.component_count(), 2);
        // Chris's arrival answers Gwyneth + Chris but not `waiting`.
        let r2 = engine.submit(chris()).unwrap();
        assert_eq!(r2.answers.len(), 2);
        assert_eq!(engine.pending().len(), 1);
        assert_eq!(engine.pending()[0].name(), "waiting");
        engine.validate_invariants();
    }

    #[test]
    fn unsafe_submission_is_rejected_and_buffer_preserved() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        engine.submit(gwyneth()).unwrap();
        // A second producer of R(Chris, ·) *plus* a consumer makes the
        // component unsafe once Chris arrives twice. Simulate: submit two
        // Chris-producers; the second makes Gwyneth's postcondition
        // ambiguous.
        engine.submit(chris()).unwrap(); // coordinates and retires both
        engine.submit(gwyneth()).unwrap();
        let chris2 = QueryBuilder::new("chris2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        // chris2 coordinates with gwyneth (safe: one producer).
        let r = engine.submit(chris2).unwrap();
        assert!(r.coordinated());

        // Now build an actually-unsafe arrival: two producers pending at
        // once. Pend a consumer and one producer that cannot ground, then
        // submit a second producer — the set {consumer, p1, p2} is unsafe.
        let consumer = QueryBuilder::new("consumer")
            .postcondition("R", |a| a.constant("X").var("v"))
            .head("R", |a| a.constant("consumer").var("v"))
            .body("Flights", |a| a.var("v").constant("Nowhere"))
            .build()
            .unwrap();
        let p1 = QueryBuilder::new("p1")
            .head("R", |a| a.constant("X").var("w"))
            .body("Flights", |a| a.var("w").constant("Nowhere"))
            .build()
            .unwrap();
        let p2 = QueryBuilder::new("p2")
            .head("R", |a| a.constant("X").var("u"))
            .body("Flights", |a| a.var("u").constant("Nowhere"))
            .build()
            .unwrap();
        engine.submit(consumer).unwrap();
        engine.submit(p1).unwrap();
        let before = engine.pending().len();
        let err = engine.submit(p2).unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
        assert_eq!(engine.pending().len(), before, "rejected query dropped");
        engine.validate_invariants();
    }

    #[test]
    fn shared_engine_is_threadable() {
        let db = db();
        let engine = SharedEngine::new(&db);
        std::thread::scope(|s| {
            s.spawn(|| {
                engine.submit(gwyneth()).unwrap();
            });
        });
        // After Gwyneth (from the other thread), Chris completes the pair.
        let r = engine.submit(chris()).unwrap();
        assert!(r.coordinated());
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 2);
    }

    #[test]
    fn incremental_metrics_track_avoided_work() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        // Ten unrelated waiters, then one more: the last submit must only
        // evaluate its own singleton component, not all pending queries.
        for i in 0..10 {
            let waiting = QueryBuilder::new(format!("w{i}"))
                .postcondition("W", |a| a.constant(format!("nobody{i}")).var("z"))
                .head("W", |a| a.constant(format!("w{i}")).var("z"))
                .body("Flights", |a| a.var("z").constant("Zurich"))
                .build()
                .unwrap();
            engine.submit(waiting).unwrap();
        }
        let snap = engine.metrics();
        assert_eq!(snap.submits, 10);
        // Every component was a singleton: one query evaluated per submit.
        assert_eq!(snap.queries_evaluated, 10);
        // A full rebuild would have examined 1+2+…+10 = 55 queries.
        assert_eq!(snap.rebuild_avoided, 45);
    }

    #[test]
    fn rebuild_engine_behaves_identically_on_the_running_example() {
        let db = db();
        let mut inc = CoordinationEngine::new(&db);
        let mut reb = RebuildEngine::new(&db);
        for q in [gwyneth(), chris()] {
            let a = inc.submit(q.clone()).unwrap();
            let b = reb.submit(q).unwrap();
            assert_eq!(a.answers, b.answers);
        }
        assert_eq!(inc.pending().len(), reb.pending().len());
        assert_eq!(inc.delivered(), reb.delivered());
        // The rebuild engine examined 1 + 2 pending queries; the
        // incremental engine evaluated the same components but records
        // what it skipped.
        assert_eq!(reb.queries_examined(), 3);
    }
}
