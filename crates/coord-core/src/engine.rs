//! A Youtopia-style online coordination engine (Section 6.1's system
//! context and the on-line setting raised in Section 7).
//!
//! The paper's prototype runs inside the Youtopia system: "when a new
//! query arrives, the system finds the set of queries this query can
//! coordinate with and updates the coordination graph accordingly. The
//! system then calls an evaluation method on the connected component that
//! the query belongs to" — and deletes answered queries afterwards.
//! [`CoordinationEngine`] reproduces that loop on top of the SCC
//! Coordination Algorithm; [`SharedEngine`] adds a thread-safe facade.

use crate::error::CoordError;
use crate::graphs::coordination_graph;
use crate::instance::QuerySet;
use crate::query::{EntangledQuery, QueryId};
use crate::scc::SccCoordinator;
use crate::semantics::Grounding;
use coord_db::{Database, Value};
use coord_graph::reach::weakly_connected_components;
use parking_lot::Mutex;

/// An answer delivered to a coordinated query: for each variable, its
/// chosen value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryAnswer {
    /// The answered query's name.
    pub query: String,
    /// (variable name, value) pairs in variable order.
    pub bindings: Vec<(String, Value)>,
}

/// Result of submitting a query to the engine.
#[derive(Clone, Debug, Default)]
pub struct SubmitResult {
    /// Answers for every query of the coordinating set found (possibly
    /// including queries submitted earlier), or empty if the new query
    /// stays pending.
    pub answers: Vec<QueryAnswer>,
}

impl SubmitResult {
    /// Whether a coordinating set was found and delivered.
    pub fn coordinated(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// The online evaluation loop: buffer queries, evaluate the affected
/// connected component on each arrival, deliver and retire coordinated
/// queries.
pub struct CoordinationEngine<'a> {
    db: &'a Database,
    pending: Vec<EntangledQuery>,
    delivered: usize,
}

impl<'a> CoordinationEngine<'a> {
    /// An engine over the given database.
    pub fn new(db: &'a Database) -> Self {
        CoordinationEngine {
            db,
            pending: Vec::new(),
            delivered: 0,
        }
    }

    /// Queries currently buffered (unsatisfied coordination requirements).
    pub fn pending(&self) -> &[EntangledQuery] {
        &self.pending
    }

    /// Total queries answered and retired so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Submit a new query: update the coordination graph, evaluate the
    /// weakly connected component the query belongs to, and — if a
    /// coordinating set is found there — deliver answers and delete those
    /// queries from the buffer.
    ///
    /// If the new query makes its component unsafe, the query is rejected
    /// (removed again) and the error returned; previously pending queries
    /// are unaffected.
    pub fn submit(&mut self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        query.validate(self.db)?;
        self.pending.push(query);
        let new_idx = self.pending.len() - 1;

        // Find the weakly connected component of the new query.
        let qs = QuerySet::new(self.pending.clone());
        let graph = coordination_graph(&qs);
        let comps = weakly_connected_components(&graph);
        let component: Vec<usize> = comps
            .into_iter()
            .find(|c| c.iter().any(|n| n.index() == new_idx))
            .expect("new query must be in some component")
            .into_iter()
            .map(|n| n.index())
            .collect();

        let comp_queries: Vec<EntangledQuery> =
            component.iter().map(|&i| self.pending[i].clone()).collect();

        let outcome = match SccCoordinator::new(self.db).run(&comp_queries) {
            Ok(o) => o,
            Err(e) => {
                // Reject the offending submission, keep earlier queries.
                self.pending.pop();
                return Err(e);
            }
        };

        let Some(best) = outcome.best() else {
            return Ok(SubmitResult::default());
        };

        // Build answers (variable names resolved per query).
        let comp_qs = QuerySet::new(comp_queries.clone());
        let mut answers = Vec::with_capacity(best.queries.len());
        for &q in &best.queries {
            answers.push(answer_for(&comp_qs, q, &best.grounding));
        }

        // Retire the coordinated queries from the buffer (descending
        // pending-index order keeps removal indices valid).
        let mut to_remove: Vec<usize> = best.queries.iter().map(|q| component[q.index()]).collect();
        to_remove.sort_unstable_by(|a, b| b.cmp(a));
        for i in to_remove {
            self.pending.remove(i);
        }
        self.delivered += answers.len();
        Ok(SubmitResult { answers })
    }

    /// Submit a batch of queries, collecting every delivered answer.
    pub fn submit_all(
        &mut self,
        queries: impl IntoIterator<Item = EntangledQuery>,
    ) -> Result<Vec<QueryAnswer>, CoordError> {
        let mut out = Vec::new();
        for q in queries {
            out.extend(self.submit(q)?.answers);
        }
        Ok(out)
    }
}

fn answer_for(qs: &QuerySet, q: QueryId, grounding: &Grounding) -> QueryAnswer {
    let query = qs.query(q);
    let mut bindings = Vec::with_capacity(query.var_count() as usize);
    for local in 0..query.var_count() {
        let v = coord_db::Var(local);
        let g = qs.global_var(q, v);
        if let Some(value) = grounding.get(g) {
            bindings.push((query.var_name(v).to_string(), value.clone()));
        }
    }
    QueryAnswer {
        query: query.name().to_string(),
        bindings,
    }
}

/// A thread-safe facade over [`CoordinationEngine`] for concurrent
/// submitters (e.g. a server front end).
pub struct SharedEngine<'a> {
    inner: Mutex<CoordinationEngine<'a>>,
}

impl<'a> SharedEngine<'a> {
    /// Wrap an engine.
    pub fn new(db: &'a Database) -> Self {
        SharedEngine {
            inner: Mutex::new(CoordinationEngine::new(db)),
        }
    }

    /// Submit a query under the engine lock.
    pub fn submit(&self, query: EntangledQuery) -> Result<SubmitResult, CoordError> {
        self.inner.lock().submit(query)
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.inner.lock().pending().len()
    }

    /// Total delivered answers.
    pub fn delivered(&self) -> usize {
        self.inner.lock().delivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db
    }

    fn gwyneth() -> EntangledQuery {
        QueryBuilder::new("gwyneth")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap()
    }

    fn chris() -> EntangledQuery {
        QueryBuilder::new("chris")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap()
    }

    #[test]
    fn coordination_happens_on_second_arrival() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        // Gwyneth arrives first: she needs Chris, so she waits.
        let r1 = engine.submit(gwyneth()).unwrap();
        assert!(!r1.coordinated());
        assert_eq!(engine.pending().len(), 1);
        // Chris arrives: both coordinate and are retired.
        let r2 = engine.submit(chris()).unwrap();
        assert!(r2.coordinated());
        assert_eq!(r2.answers.len(), 2);
        assert_eq!(engine.pending().len(), 0);
        assert_eq!(engine.delivered(), 2);
        // Both got flight 101.
        for a in &r2.answers {
            assert_eq!(a.bindings[0].1, Value::int(101));
        }
    }

    #[test]
    fn chris_alone_coordinates_immediately() {
        // Chris has no postconditions: a singleton coordinating set.
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        let r = engine.submit(chris()).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.answers[0].query, "chris");
    }

    #[test]
    fn unrelated_pending_queries_are_untouched() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        engine.submit(gwyneth()).unwrap();
        // An unrelated waiting query in a different component.
        let waiting = QueryBuilder::new("waiting")
            .postcondition("S", |a| a.constant("nobody").var("z"))
            .head("S", |a| a.constant("waiting").var("z"))
            .body("Flights", |a| a.var("z").constant("Zurich"))
            .build()
            .unwrap();
        let r = engine.submit(waiting).unwrap();
        assert!(!r.coordinated());
        assert_eq!(engine.pending().len(), 2);
        // Chris's arrival answers Gwyneth + Chris but not `waiting`.
        let r2 = engine.submit(chris()).unwrap();
        assert_eq!(r2.answers.len(), 2);
        assert_eq!(engine.pending().len(), 1);
        assert_eq!(engine.pending()[0].name(), "waiting");
    }

    #[test]
    fn unsafe_submission_is_rejected_and_buffer_preserved() {
        let db = db();
        let mut engine = CoordinationEngine::new(&db);
        engine.submit(gwyneth()).unwrap();
        // A second producer of R(Chris, ·) *plus* a consumer makes the
        // component unsafe once Chris arrives twice. Simulate: submit two
        // Chris-producers; the second makes Gwyneth's postcondition
        // ambiguous.
        engine.submit(chris()).unwrap(); // coordinates and retires both
        engine.submit(gwyneth()).unwrap();
        let chris2 = QueryBuilder::new("chris2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        // chris2 coordinates with gwyneth (safe: one producer).
        let r = engine.submit(chris2).unwrap();
        assert!(r.coordinated());

        // Now build an actually-unsafe arrival: two producers pending at
        // once. Pend a consumer and one producer that cannot ground, then
        // submit a second producer — the set {consumer, p1, p2} is unsafe.
        let consumer = QueryBuilder::new("consumer")
            .postcondition("R", |a| a.constant("X").var("v"))
            .head("R", |a| a.constant("consumer").var("v"))
            .body("Flights", |a| a.var("v").constant("Nowhere"))
            .build()
            .unwrap();
        let p1 = QueryBuilder::new("p1")
            .head("R", |a| a.constant("X").var("w"))
            .body("Flights", |a| a.var("w").constant("Nowhere"))
            .build()
            .unwrap();
        let p2 = QueryBuilder::new("p2")
            .head("R", |a| a.constant("X").var("u"))
            .body("Flights", |a| a.var("u").constant("Nowhere"))
            .build()
            .unwrap();
        engine.submit(consumer).unwrap();
        engine.submit(p1).unwrap();
        let before = engine.pending().len();
        let err = engine.submit(p2).unwrap_err();
        assert!(matches!(err, CoordError::UnsafeSet { .. }));
        assert_eq!(engine.pending().len(), before, "rejected query dropped");
    }

    #[test]
    fn shared_engine_is_threadable() {
        let db = db();
        let engine = SharedEngine::new(&db);
        std::thread::scope(|s| {
            s.spawn(|| {
                engine.submit(gwyneth()).unwrap();
            });
        });
        // After Gwyneth (from the other thread), Chris completes the pair.
        let r = engine.submit(chris()).unwrap();
        assert!(r.coordinated());
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 2);
    }
}
