//! Results returned by the coordination algorithms.

use crate::query::QueryId;
use crate::semantics::Grounding;

/// One coordinating set discovered by an algorithm: the member queries
/// (sorted by id) and a witnessing grounding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FoundSet {
    /// Member queries, sorted ascending by id.
    pub queries: Vec<QueryId>,
    /// A total assignment witnessing Definition 1 for these members.
    pub grounding: Grounding,
}

impl FoundSet {
    /// Number of member queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty (never true for algorithm outputs).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Whether `q` is a member.
    pub fn contains(&self, q: QueryId) -> bool {
        self.queries.binary_search(&q).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_uses_sorted_order() {
        let f = FoundSet {
            queries: vec![QueryId(0), QueryId(2), QueryId(5)],
            grounding: Grounding::new(),
        };
        assert!(f.contains(QueryId(2)));
        assert!(!f.contains(QueryId(3)));
        assert_eq!(f.len(), 3);
    }
}
