//! Entangled query syntax: `{P} H :- B`.
//!
//! An entangled query (Section 2.1 of the paper) is a triple of
//!
//! * **postconditions** `P` — answer-relation atoms the query *requires*
//!   other queries (or itself) to produce,
//! * **head** `H` — answer-relation atoms the query *produces*,
//! * **body** `B` — a conjunction over database relations that constrains
//!   the query's variables.
//!
//! Example (the paper's running example): Gwyneth wants to fly with Chris
//! to Zurich:
//!
//! ```text
//! q1 = {R(Chris, x)}  R(Gwyneth, x)  :-  Flights(x, Zurich)
//! ```

use crate::error::CoordError;
use coord_db::{Atom, Database, Symbol, Term, Value, Var};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a query within a [`crate::instance::QuerySet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub usize);

impl QueryId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// An entangled query `{P} H :- B`.
///
/// Variables are local to the query (dense ids `0..var_count`); a
/// [`crate::instance::QuerySet`] renames them into a global space before
/// unification. Use [`QueryBuilder`] to construct queries with named
/// variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntangledQuery {
    name: String,
    postconditions: Vec<Atom>,
    heads: Vec<Atom>,
    body: Vec<Atom>,
    var_names: Vec<String>,
}

impl EntangledQuery {
    /// Construct a query from parts. Prefer [`QueryBuilder`].
    ///
    /// `var_names[i]` names local variable `Var(i)`; every variable used in
    /// an atom must be named.
    pub fn new(
        name: impl Into<String>,
        postconditions: Vec<Atom>,
        heads: Vec<Atom>,
        body: Vec<Atom>,
        var_names: Vec<String>,
    ) -> Result<Self, CoordError> {
        let name = name.into();
        if heads.is_empty() {
            return Err(CoordError::EmptyHead { query: name });
        }
        let q = EntangledQuery {
            name,
            postconditions,
            heads,
            body,
            var_names,
        };
        // Internal invariant: all variables are in range.
        let n = q.var_names.len() as u32;
        for atom in q.all_atoms() {
            for v in atom.vars() {
                assert!(v.0 < n, "variable {v:?} out of range in query `{}`", q.name);
            }
        }
        Ok(q)
    }

    /// The query's display name (e.g. `"qC"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Postcondition atoms `P`.
    pub fn postconditions(&self) -> &[Atom] {
        &self.postconditions
    }

    /// Head atoms `H`.
    pub fn heads(&self) -> &[Atom] {
        &self.heads
    }

    /// Body atoms `B`.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// Number of local variables.
    pub fn var_count(&self) -> u32 {
        self.var_names.len() as u32
    }

    /// The name of a local variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// All atoms of the query: postconditions, heads, then body.
    pub fn all_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.postconditions
            .iter()
            .chain(&self.heads)
            .chain(&self.body)
    }

    /// Relations used in heads and postconditions (the *answer relations*).
    pub fn answer_relations(&self) -> impl Iterator<Item = &Symbol> {
        self.postconditions
            .iter()
            .chain(&self.heads)
            .map(|a| &a.relation)
    }

    /// Validate this query against a database per the syntax requirements
    /// of Section 2.1: body relations must exist in the schema (with the
    /// right arity), answer relations must not.
    pub fn validate(&self, db: &Database) -> Result<(), CoordError> {
        for atom in &self.body {
            let table = db
                .table(&atom.relation)
                .map_err(|_| CoordError::BodyRelationMissing {
                    query: self.name.clone(),
                    relation: atom.relation.to_string(),
                })?;
            if table.schema().arity() != atom.arity() {
                return Err(CoordError::Db(coord_db::DbError::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: table.schema().arity(),
                    actual: atom.arity(),
                }));
            }
        }
        for rel in self.answer_relations() {
            if db.has_relation(rel) {
                return Err(CoordError::AnswerRelationInSchema {
                    query: self.name.clone(),
                    relation: rel.to_string(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for EntangledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_atom = |atom: &Atom| {
            let args: Vec<String> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => self.var_names[v.index()].clone(),
                    Term::Const(c) => c.to_string(),
                })
                .collect();
            format!("{}({})", atom.relation, args.join(", "))
        };
        let list = |atoms: &[Atom]| atoms.iter().map(fmt_atom).collect::<Vec<_>>().join(", ");
        write!(
            f,
            "{}: {{{}}} {} :- {}",
            self.name,
            list(&self.postconditions),
            list(&self.heads),
            if self.body.is_empty() {
                "∅".to_string()
            } else {
                list(&self.body)
            }
        )
    }
}

/// Fluent builder for atoms inside a [`QueryBuilder`].
///
/// Variables are referenced by name and shared across all atoms of the
/// query being built; constants may be strings or integers.
pub struct AtomArgs<'b> {
    vars: &'b mut HashMap<String, Var>,
    names: &'b mut Vec<String>,
    terms: Vec<Term>,
}

impl AtomArgs<'_> {
    /// Append a named variable argument (created on first use).
    pub fn var(mut self, name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let next = Var(self.names.len() as u32);
        let v = *self.vars.entry(name.to_string()).or_insert_with(|| {
            self.names.push(name.to_string());
            next
        });
        self.terms.push(Term::Var(v));
        self
    }

    /// Append a constant argument.
    pub fn constant(mut self, value: impl Into<Value>) -> Self {
        self.terms.push(Term::Const(value.into()));
        self
    }
}

/// Fluent builder for [`EntangledQuery`] values.
///
/// ```
/// use coord_core::QueryBuilder;
///
/// // {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
/// let q = QueryBuilder::new("q1")
///     .postcondition("R", |a| a.constant("Chris").var("x"))
///     .head("R", |a| a.constant("Gwyneth").var("x"))
///     .body("Flights", |a| a.var("x").constant("Zurich"))
///     .build()
///     .unwrap();
/// assert_eq!(q.postconditions().len(), 1);
/// ```
pub struct QueryBuilder {
    name: String,
    vars: HashMap<String, Var>,
    var_names: Vec<String>,
    postconditions: Vec<Atom>,
    heads: Vec<Atom>,
    body: Vec<Atom>,
}

impl QueryBuilder {
    /// Start building a query with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        QueryBuilder {
            name: name.into(),
            vars: HashMap::new(),
            var_names: Vec::new(),
            postconditions: Vec::new(),
            heads: Vec::new(),
            body: Vec::new(),
        }
    }

    fn make_atom(
        &mut self,
        relation: impl Into<Symbol>,
        f: impl FnOnce(AtomArgs<'_>) -> AtomArgs<'_>,
    ) -> Atom {
        let args = f(AtomArgs {
            vars: &mut self.vars,
            names: &mut self.var_names,
            terms: Vec::new(),
        });
        Atom::new(relation, args.terms)
    }

    /// Add a postcondition atom.
    pub fn postcondition(
        mut self,
        relation: impl Into<Symbol>,
        f: impl FnOnce(AtomArgs<'_>) -> AtomArgs<'_>,
    ) -> Self {
        let atom = self.make_atom(relation, f);
        self.postconditions.push(atom);
        self
    }

    /// Add a head atom.
    pub fn head(
        mut self,
        relation: impl Into<Symbol>,
        f: impl FnOnce(AtomArgs<'_>) -> AtomArgs<'_>,
    ) -> Self {
        let atom = self.make_atom(relation, f);
        self.heads.push(atom);
        self
    }

    /// Add a body atom.
    pub fn body(
        mut self,
        relation: impl Into<Symbol>,
        f: impl FnOnce(AtomArgs<'_>) -> AtomArgs<'_>,
    ) -> Self {
        let atom = self.make_atom(relation, f);
        self.body.push(atom);
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<EntangledQuery, CoordError> {
        EntangledQuery::new(
            self.name,
            self.postconditions,
            self.heads,
            self.body,
            self.var_names,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gwyneth() -> EntangledQuery {
        QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_shares_variables_across_atoms() {
        let q = gwyneth();
        assert_eq!(q.var_count(), 1);
        let post_var = q.postconditions()[0].terms[1].as_var().unwrap();
        let head_var = q.heads()[0].terms[1].as_var().unwrap();
        let body_var = q.body()[0].terms[0].as_var().unwrap();
        assert_eq!(post_var, head_var);
        assert_eq!(head_var, body_var);
        assert_eq!(q.var_name(post_var), "x");
    }

    #[test]
    fn empty_head_rejected() {
        let err = QueryBuilder::new("bad")
            .body("F", |a| a.var("x"))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoordError::EmptyHead { .. }));
    }

    #[test]
    fn display_matches_paper_notation() {
        let q = gwyneth();
        assert_eq!(
            q.to_string(),
            "q1: {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)"
        );
    }

    #[test]
    fn empty_body_displays_as_empty_set() {
        let q = QueryBuilder::new("c")
            .head("C", |a| a.constant(1i64))
            .build()
            .unwrap();
        assert!(q.to_string().ends_with(":- ∅"));
    }

    #[test]
    fn validate_against_schema() {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        let q = gwyneth();
        q.validate(&db).unwrap();

        // Body relation missing.
        let empty = Database::new();
        assert!(matches!(
            q.validate(&empty),
            Err(CoordError::BodyRelationMissing { .. })
        ));

        // Answer relation clashing with schema.
        let mut db2 = Database::new();
        db2.create_table("Flights", &["id", "dest"]).unwrap();
        db2.create_table("R", &["a", "b"]).unwrap();
        assert!(matches!(
            q.validate(&db2),
            Err(CoordError::AnswerRelationInSchema { .. })
        ));
    }

    #[test]
    fn validate_checks_body_arity() {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest", "airline"])
            .unwrap();
        let q = gwyneth(); // body atom has arity 2
        assert!(q.validate(&db).is_err());
    }

    #[test]
    fn answer_relations_listed() {
        let q = gwyneth();
        let rels: Vec<String> = q
            .answer_relations()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(rels, vec!["R", "R"]);
    }
}
