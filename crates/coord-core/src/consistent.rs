//! The **Consistent Coordination Algorithm** (Section 5): coordination for
//! *unsafe* query sets, exploiting application knowledge that all users
//! coordinate on the same attributes.
//!
//! Setting (Definitions 7–9): a relation `S(key, A_1, ..., A_d)`, a binary
//! friendship relation `F(user, friend)`, and one query per user of the
//! form
//!
//! ```text
//! {R(y_1, f_1), R(y_2, c_2), ...}  R(x, User) :-
//!     S(x, a^x_1, ..., a^x_d), F(User, f_1), Π_i S(y_i, a^i_1, ..., a^i_d)
//! ```
//!
//! where every query is **A-consistent**: it is A-coordinating (the same
//! constant/variable for itself and all partners on every coordination
//! attribute) and (Ā)-non-coordinating (partners unconstrained on the
//! rest). Proposition 1 then guarantees that if any coordinating set
//! exists, one exists in which *all* tuples agree on the coordination
//! attributes — so the algorithm can simply sweep the option values:
//!
//! 1. compute each query's option list `V(q)` with one distinct-value
//!    database query,
//! 2. build the pruned coordination graph (friendship-aware),
//! 3. for every `v ∈ V(Q) = ∪ V(q)`: restrict to `G_v`, run the cleaning
//!    phase to a fixpoint, and record the surviving set,
//! 4. return the largest surviving set (the guarantee: a maximum-size
//!    coordinating set among those agreeing on the coordination
//!    attributes), grounding each member to a concrete tuple key.
//!
//! The total database work is `O(n)` queries; the graph work is `O(n²)`
//! per option value (Section 5, "Running time").

use crate::error::CoordError;
use coord_db::{Atom, ConjunctiveQuery, Database, Symbol, Term, Value};
use std::collections::{HashMap, HashSet};

/// A coordination partner specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Partner {
    /// A specific user, given as a constant (need not be a friend — in the
    /// movies example Chris names Will although they are not friends).
    Named(Value),
    /// Any one friend from the default friendship relation (`f_1` in the
    /// general form).
    AnyFriend,
    /// Any one contact from a *different* binary relation (e.g. a
    /// `Colleagues` table) — the "more than one binary relation to specify
    /// coordination partners" generalization of Section 5's discussion.
    AnyFriendVia(Symbol),
    /// At least `k` friends — the generalization discussed at the end of
    /// Section 5, which is *not expressible* in entangled-query syntax.
    AtLeastFriends(usize),
}

/// One user's A-consistent query, in structured form.
///
/// `coord[j]` constrains coordination attribute `A_j` (`None` = don't
/// care); by A-consistency the same constraint applies to the user and all
/// partners. `personal[j]` constrains the user's own tuple on the j-th
/// non-coordination attribute; partners are unconstrained there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistentQuery {
    pub user: Value,
    pub partners: Vec<Partner>,
    pub coord: Vec<Option<Value>>,
    pub personal: Vec<Option<Value>>,
}

impl ConsistentQuery {
    /// A query with no partner requirements and no constraints.
    pub fn for_user(user: impl Into<Value>, n_coord: usize, n_personal: usize) -> Self {
        ConsistentQuery {
            user: user.into(),
            partners: Vec::new(),
            coord: vec![None; n_coord],
            personal: vec![None; n_personal],
        }
    }

    /// Require a named partner.
    pub fn with_named_partner(mut self, user: impl Into<Value>) -> Self {
        self.partners.push(Partner::Named(user.into()));
        self
    }

    /// Require any one friend as partner.
    pub fn with_any_friend(mut self) -> Self {
        self.partners.push(Partner::AnyFriend);
        self
    }

    /// Require any one contact from the named binary relation as partner.
    pub fn with_any_friend_via(mut self, relation: impl Into<Symbol>) -> Self {
        self.partners.push(Partner::AnyFriendVia(relation.into()));
        self
    }

    /// Require at least `k` friends as partners.
    pub fn with_at_least_friends(mut self, k: usize) -> Self {
        self.partners.push(Partner::AtLeastFriends(k));
        self
    }

    /// Constrain coordination attribute `j` to a constant.
    pub fn coord_const(mut self, j: usize, v: impl Into<Value>) -> Self {
        self.coord[j] = Some(v.into());
        self
    }

    /// Constrain personal (non-coordination) attribute `j` to a constant.
    pub fn personal_const(mut self, j: usize, v: impl Into<Value>) -> Self {
        self.personal[j] = Some(v.into());
        self
    }
}

impl ConsistentQuery {
    /// Encode this query in the general entangled-query syntax of
    /// Section 5:
    ///
    /// ```text
    /// {R(y_1, f_1), R(y_2, c_2), ...}  R(x, User) :-
    ///     S(x, a^x_1, ..., a^x_d), F(User, f_1), Π_i S(y_i, a^i_1, ...)
    /// ```
    ///
    /// Coordination attributes share one term between the user's and every
    /// partner's tuple (A-coordinating); non-coordination attributes get
    /// fresh variables per partner (Ā-non-coordinating). Fails with
    /// [`CoordError::NotExpressible`] for [`Partner::AtLeastFriends`] with
    /// `k ≠ 1` — the paper notes this coordination type "is not even
    /// expressible in the current entangled query syntax".
    pub fn to_entangled(
        &self,
        config: &ConsistentConfig,
        db: &Database,
    ) -> Result<crate::query::EntangledQuery, CoordError> {
        use coord_db::Atom;

        let table = db.table(&config.table)?;
        let schema = table.schema();
        let key_pos = schema.require_attr(&config.key)?;
        let coord_pos: Vec<usize> = config
            .coord_attrs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<Result<_, _>>()?;
        let personal_pos: Vec<usize> = config
            .personal_attrs
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<Result<_, _>>()?;
        let friends_table = db.table(&config.friends)?;
        debug_assert_eq!(friends_table.schema().arity(), 2);

        let mut next_var = 0u32;
        let mut var_names: Vec<String> = Vec::new();
        let mut fresh = |name: String, var_names: &mut Vec<String>| -> Term {
            let v = Term::Var(coord_db::Var(next_var));
            next_var += 1;
            var_names.push(name);
            v
        };

        // Shared coordination-attribute terms.
        let coord_terms: Vec<Term> = self
            .coord
            .iter()
            .enumerate()
            .map(|(j, c)| match c {
                Some(v) => Term::Const(v.clone()),
                None => fresh(format!("a{j}"), &mut var_names),
            })
            .collect();

        // The encoding requires every attribute of S to be key, coordination
        // or personal — otherwise some position would be unconstrained in a
        // way Definitions 7–9 do not describe.
        if schema.arity() != 1 + coord_pos.len() + personal_pos.len() {
            return Err(CoordError::UnknownCoordAttribute {
                attribute: format!(
                    "schema of `{}` has {} attributes but key+coord+personal cover {}",
                    config.table,
                    schema.arity(),
                    1 + coord_pos.len() + personal_pos.len()
                ),
            });
        }

        // One S-atom builder: key term + coordination terms + per-tuple
        // personal terms.
        let make_s_atom = |key: Term, personal: Vec<Term>| {
            let mut terms: Vec<Term> = vec![Term::Const(Value::int(0)); schema.arity()];
            terms[key_pos] = key;
            for (j, p) in coord_pos.iter().enumerate() {
                terms[*p] = coord_terms[j].clone();
            }
            for (j, p) in personal_pos.iter().enumerate() {
                terms[*p] = personal[j].clone();
            }
            Atom::new(config.table.clone(), terms)
        };

        let mut postconditions = Vec::new();
        let mut body = Vec::new();

        // The user's own tuple.
        let x = fresh("x".to_string(), &mut var_names);
        let own_personal: Vec<Term> = self
            .personal
            .iter()
            .enumerate()
            .map(|(j, c)| match c {
                Some(v) => Term::Const(v.clone()),
                None => fresh(format!("p{j}"), &mut var_names),
            })
            .collect();
        body.push(make_s_atom(x.clone(), own_personal));

        // Partner atoms.
        for (i, partner) in self.partners.iter().enumerate() {
            let y = fresh(format!("y{i}"), &mut var_names);
            let partner_term = match partner {
                Partner::Named(u) => Term::Const(u.clone()),
                Partner::AnyFriend | Partner::AnyFriendVia(_) | Partner::AtLeastFriends(1) => {
                    let relation = match partner {
                        Partner::AnyFriendVia(r) => r.clone(),
                        _ => config.friends.clone(),
                    };
                    let f = fresh(format!("f{i}"), &mut var_names);
                    body.push(Atom::new(
                        relation,
                        vec![Term::Const(self.user.clone()), f.clone()],
                    ));
                    f
                }
                Partner::AtLeastFriends(k) => {
                    return Err(CoordError::NotExpressible {
                        feature: format!("coordination with at least {k} friends"),
                    });
                }
            };
            postconditions.push(Atom::new("R", vec![y.clone(), partner_term]));
            // Partner's tuple: fresh personal variables (non-coordinating).
            let partner_personal: Vec<Term> = (0..personal_pos.len())
                .map(|j| fresh(format!("q{i}_{j}"), &mut var_names))
                .collect();
            body.push(make_s_atom(y, partner_personal));
        }

        let head = Atom::new("R", vec![x, Term::Const(self.user.clone())]);
        crate::query::EntangledQuery::new(
            format!("q[{}]", self.user),
            postconditions,
            vec![head],
            body,
            var_names,
        )
    }
}

/// Schema binding for the algorithm: which table holds the candidate
/// tuples, which attributes are coordinated on, and where friendships
/// live.
#[derive(Clone, Debug)]
pub struct ConsistentConfig {
    /// The candidate-tuple relation `S`.
    pub table: Symbol,
    /// Name of `S`'s key attribute.
    pub key: String,
    /// Names of the coordination attributes `A ⊆ attrs(S)`.
    pub coord_attrs: Vec<String>,
    /// Names of the remaining (personal) attributes.
    pub personal_attrs: Vec<String>,
    /// The friendship relation `F(user, friend)` (arity 2).
    pub friends: Symbol,
}

impl ConsistentConfig {
    /// Convenience constructor.
    pub fn new(
        table: impl Into<Symbol>,
        key: impl Into<String>,
        coord_attrs: &[&str],
        personal_attrs: &[&str],
        friends: impl Into<Symbol>,
    ) -> Self {
        ConsistentConfig {
            table: table.into(),
            key: key.into(),
            coord_attrs: coord_attrs
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            personal_attrs: personal_attrs
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            friends: friends.into(),
        }
    }

    /// Check the configured attributes against the database schema.
    pub fn validate(&self, db: &Database) -> Result<(), CoordError> {
        let table = db.table(&self.table)?;
        let schema = table.schema();
        for attr in std::iter::once(&self.key)
            .chain(&self.coord_attrs)
            .chain(&self.personal_attrs)
        {
            if schema.attr_index(attr).is_none() {
                return Err(CoordError::UnknownCoordAttribute {
                    attribute: attr.clone(),
                });
            }
        }
        let friends = db.table(&self.friends)?;
        if friends.schema().arity() != 2 {
            return Err(CoordError::Db(coord_db::DbError::ArityMismatch {
                relation: self.friends.to_string(),
                expected: 2,
                actual: friends.schema().arity(),
            }));
        }
        Ok(())
    }
}

/// A value of the coordination attributes (one entry per attribute in
/// `coord_attrs` order).
pub type CoordValue = Vec<Value>;

/// Statistics for a run (mirrors the measurements of Figures 7–8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConsistentStats {
    /// Database queries issued (option lists + friend lists + final
    /// groundings) — linear in the number of queries.
    pub db_queries: usize,
    /// Edges in the pruned coordination graph.
    pub graph_edges: usize,
    /// Option values considered (|V(Q)|).
    pub values_considered: usize,
    /// Total cleaning-phase removal rounds across all values.
    pub cleaning_rounds: usize,
}

/// The chosen coordinating set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsistentSet {
    /// The agreed value of the coordination attributes.
    pub value: CoordValue,
    /// Indices (into the input query slice) of the member queries.
    pub members: Vec<usize>,
    /// Mapping user → selected tuple key.
    pub assignment: Vec<(Value, Value)>,
}

/// Outcome of the Consistent Coordination Algorithm.
#[derive(Clone, Debug)]
pub struct ConsistentOutcome {
    /// `V(q)` per input query (empty = body unsatisfiable, pruned).
    pub option_lists: Vec<Vec<CoordValue>>,
    /// Surviving-set size per option value, in sweep order.
    pub per_value: Vec<(CoordValue, usize)>,
    /// The selected (maximum-size) coordinating set, if any value survived.
    pub best: Option<ConsistentSet>,
    /// Run statistics.
    pub stats: ConsistentStats,
}

/// The Consistent Coordination Algorithm.
pub struct ConsistentCoordinator<'a> {
    db: &'a Database,
    config: ConsistentConfig,
}

impl<'a> ConsistentCoordinator<'a> {
    /// Bind the algorithm to a database and schema configuration.
    pub fn new(db: &'a Database, config: ConsistentConfig) -> Result<Self, CoordError> {
        config.validate(db)?;
        Ok(ConsistentCoordinator { db, config })
    }

    /// The schema configuration.
    pub fn config(&self) -> &ConsistentConfig {
        &self.config
    }

    /// Run the algorithm over one query per user.
    pub fn run(&self, queries: &[ConsistentQuery]) -> Result<ConsistentOutcome, CoordError> {
        self.run_inner(queries, None)
    }

    /// Run with the per-value sweep parallelized over `threads` workers
    /// (the parallelism noted as future work in Section 6.2).
    pub fn run_parallel(
        &self,
        queries: &[ConsistentQuery],
        threads: usize,
    ) -> Result<ConsistentOutcome, CoordError> {
        self.run_inner(queries, Some(threads.max(1)))
    }

    fn run_inner(
        &self,
        queries: &[ConsistentQuery],
        threads: Option<usize>,
    ) -> Result<ConsistentOutcome, CoordError> {
        let mut stats = ConsistentStats::default();

        // Step 1: option lists V(q), one distinct-value query each.
        let mut option_lists: Vec<Vec<CoordValue>> = Vec::with_capacity(queries.len());
        for q in queries {
            option_lists.push(self.option_list(q)?);
            stats.db_queries += 1;
        }
        let option_sets: Vec<HashSet<&CoordValue>> =
            option_lists.iter().map(|l| l.iter().collect()).collect();

        // Friend lists: one lookup per (query, friendship relation) the
        // query actually uses — supporting the multiple-binary-relation
        // generalization of Section 5.
        let mut friends: Vec<HashMap<Symbol, HashSet<Value>>> = Vec::with_capacity(queries.len());
        for q in queries {
            let mut map: HashMap<Symbol, HashSet<Value>> = HashMap::new();
            for p in &q.partners {
                let rel = match p {
                    Partner::AnyFriend | Partner::AtLeastFriends(_) => self.config.friends.clone(),
                    Partner::AnyFriendVia(r) => r.clone(),
                    Partner::Named(_) => continue,
                };
                if let std::collections::hash_map::Entry::Vacant(e) = map.entry(rel) {
                    let set = self.friends_of_via(&q.user, e.key())?;
                    stats.db_queries += 1;
                    e.insert(set);
                }
            }
            friends.push(map);
        }

        // User → query index (first query wins if a user submitted twice).
        let mut by_user: HashMap<&Value, usize> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            by_user.entry(&q.user).or_insert(i);
        }

        // Step 2: pruned coordination graph. `adj[i]` = queries that can
        // serve i's requirements; only queries with non-empty V(q) are
        // present.
        let alive: Vec<bool> = option_lists.iter().map(|l| !l.is_empty()).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); queries.len()];
        for (i, q) in queries.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            let mut targets: HashSet<usize> = HashSet::new();
            for p in &q.partners {
                match p {
                    Partner::Named(u) => {
                        if let Some(&j) = by_user.get(u) {
                            if j != i && alive[j] {
                                targets.insert(j);
                            }
                        }
                    }
                    Partner::AnyFriend | Partner::AnyFriendVia(_) | Partner::AtLeastFriends(_) => {
                        let rel = partner_relation(p, &self.config);
                        for f in friends[i].get(&rel).into_iter().flatten() {
                            if let Some(&j) = by_user.get(f) {
                                if j != i && alive[j] {
                                    targets.insert(j);
                                }
                            }
                        }
                    }
                }
            }
            adj[i] = targets.into_iter().collect();
            adj[i].sort_unstable();
            stats.graph_edges += adj[i].len();
        }

        // Step 3: the option sweep. V(Q) in deterministic (sorted) order.
        let mut all_values: Vec<CoordValue> = {
            let mut set: HashSet<CoordValue> = HashSet::new();
            for l in &option_lists {
                set.extend(l.iter().cloned());
            }
            let mut v: Vec<CoordValue> = set.into_iter().collect();
            v.sort();
            v
        };
        stats.values_considered = all_values.len();

        let sweep = |v: &CoordValue| -> (usize, Vec<usize>, usize) {
            clean_value(
                &self.config,
                queries,
                &option_sets,
                &by_user,
                &friends,
                &alive,
                v,
            )
        };

        let mut per_value: Vec<(CoordValue, usize)> = Vec::with_capacity(all_values.len());
        let mut survivors: Vec<Vec<usize>> = Vec::with_capacity(all_values.len());
        match threads {
            None | Some(1) => {
                for v in &all_values {
                    let (size, members, rounds) = sweep(v);
                    stats.cleaning_rounds += rounds;
                    per_value.push((v.clone(), size));
                    survivors.push(members);
                }
            }
            Some(t) => {
                // Every option value is independent: chunk the sweep
                // across scoped threads sharing the read-only state.
                let results: Vec<(usize, Vec<usize>, usize)> = std::thread::scope(|scope| {
                    let chunk = all_values.len().div_ceil(t);
                    let mut handles = Vec::new();
                    for ch in all_values.chunks(chunk.max(1)) {
                        let sweep = &sweep;
                        handles.push(scope.spawn(move || ch.iter().map(sweep).collect::<Vec<_>>()));
                    }
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("sweep worker panicked"))
                        .collect()
                });
                for (v, (size, members, rounds)) in all_values.iter().zip(results) {
                    stats.cleaning_rounds += rounds;
                    per_value.push((v.clone(), size));
                    survivors.push(members);
                }
            }
        }

        // Step 4: select the maximum surviving set and ground it.
        let best_idx = per_value
            .iter()
            .enumerate()
            .max_by_key(|(i, (_, size))| (*size, std::cmp::Reverse(*i)))
            .filter(|(_, (_, size))| *size > 0)
            .map(|(i, _)| i);

        let best = match best_idx {
            None => None,
            Some(i) => {
                let value = all_values.swap_remove(i);
                let members = survivors.swap_remove(i);
                let mut assignment = Vec::with_capacity(members.len());
                for &m in &members {
                    let key = self
                        .ground_one(&queries[m], &value)?
                        .expect("member of a surviving set must have a tuple");
                    stats.db_queries += 1;
                    assignment.push((queries[m].user.clone(), key));
                }
                Some(ConsistentSet {
                    value,
                    members,
                    assignment,
                })
            }
        };

        Ok(ConsistentOutcome {
            option_lists,
            per_value,
            best,
            stats,
        })
    }

    /// `V(q)`: distinct coordination-attribute values compatible with the
    /// query's own constants (Definition 10).
    fn option_list(&self, q: &ConsistentQuery) -> Result<Vec<CoordValue>, CoordError> {
        let mut bound: Vec<(&str, Value)> = Vec::new();
        for (j, c) in q.coord.iter().enumerate() {
            if let Some(v) = c {
                bound.push((self.config.coord_attrs[j].as_str(), v.clone()));
            }
        }
        for (j, c) in q.personal.iter().enumerate() {
            if let Some(v) = c {
                bound.push((self.config.personal_attrs[j].as_str(), v.clone()));
            }
        }
        let project: Vec<&str> = self.config.coord_attrs.iter().map(String::as_str).collect();
        let mut values = self
            .db
            .distinct_values(&self.config.table, &project, &bound)?;
        values.sort();
        Ok(values)
    }

    /// The contacts of `user` per a binary relation `(user, friend)`.
    fn friends_of_via(
        &self,
        user: &Value,
        relation: &Symbol,
    ) -> Result<HashSet<Value>, CoordError> {
        let table = self.db.table(relation)?;
        if table.schema().arity() != 2 {
            return Err(CoordError::Db(coord_db::DbError::ArityMismatch {
                relation: relation.to_string(),
                expected: 2,
                actual: table.schema().arity(),
            }));
        }
        let attrs = table.schema().attrs();
        let user_attr = attrs[0].as_str().to_string();
        let friend_attr = attrs[1].as_str().to_string();
        let rows = self.db.distinct_values(
            relation,
            &[friend_attr.as_str()],
            &[(user_attr.as_str(), user.clone())],
        )?;
        Ok(rows.into_iter().map(|mut r| r.swap_remove(0)).collect())
    }

    /// Fetch a concrete tuple key for `q` at coordination value `v` (the
    /// paper's final grounding query).
    fn ground_one(&self, q: &ConsistentQuery, v: &CoordValue) -> Result<Option<Value>, CoordError> {
        let table = self.db.table(&self.config.table)?;
        let schema = table.schema();
        let key_pos = schema.require_attr(&self.config.key)?;
        let mut terms: Vec<Term> = (0..schema.arity())
            .map(|i| Term::var(i as u32 + 1)) // fresh vars everywhere
            .collect();
        terms[key_pos] = Term::var(0);
        for (j, name) in self.config.coord_attrs.iter().enumerate() {
            terms[schema.require_attr(name)?] = Term::Const(v[j].clone());
        }
        for (j, name) in self.config.personal_attrs.iter().enumerate() {
            if let Some(c) = &q.personal[j] {
                terms[schema.require_attr(name)?] = Term::Const(c.clone());
            }
        }
        let cq = ConjunctiveQuery::new(vec![Atom::new(self.config.table.clone(), terms)]);
        Ok(self
            .db
            .find_one(&cq)?
            .and_then(|a| a.get(coord_db::Var(0)).cloned()))
    }
}

/// The friendship relation a partner specification draws from.
fn partner_relation(p: &Partner, config: &ConsistentConfig) -> Symbol {
    match p {
        Partner::AnyFriendVia(r) => r.clone(),
        _ => config.friends.clone(),
    }
}

/// The cleaning phase for one option value `v`: restrict to `G_v` and
/// iteratively remove queries whose coordination requirements fail.
/// Returns (surviving size, surviving members, rounds).
fn clean_value(
    config: &ConsistentConfig,
    queries: &[ConsistentQuery],
    option_sets: &[HashSet<&CoordValue>],
    by_user: &HashMap<&Value, usize>,
    friends: &[HashMap<Symbol, HashSet<Value>>],
    alive: &[bool],
    v: &CoordValue,
) -> (usize, Vec<usize>, usize) {
    let mut present: Vec<bool> = (0..queries.len())
        .map(|i| alive[i] && option_sets[i].contains(v))
        .collect();

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for (i, q) in queries.iter().enumerate() {
            if !present[i] {
                continue;
            }
            let present_friends = |p: &Partner| {
                let rel = partner_relation(p, config);
                friends[i]
                    .get(&rel)
                    .into_iter()
                    .flatten()
                    .filter(|f| by_user.get(*f).is_some_and(|&j| j != i && present[j]))
            };
            let ok = q.partners.iter().all(|p| match p {
                Partner::Named(u) => by_user.get(u).is_some_and(|&j| j != i && present[j]),
                // `any`-style short circuit: one present friend suffices.
                Partner::AnyFriend | Partner::AnyFriendVia(_) => {
                    present_friends(p).next().is_some()
                }
                Partner::AtLeastFriends(k) => present_friends(p).take(*k).count() >= *k,
            });
            if !ok {
                present[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let members: Vec<usize> = (0..queries.len()).filter(|&i| present[i]).collect();
    (members.len(), members, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The movies example of Section 5.
    ///
    /// Cinemas table M(movie_id, cinema, movie); friendships C(user, friend).
    /// Hugo plays at Regal, AMC, and Cinemark; Contagion at Regal;
    /// Project X at AMC.
    pub(crate) fn movies_db() -> Database {
        let mut db = Database::new();
        db.create_table("M", &["movie_id", "cinema", "movie"])
            .unwrap();
        let rows = [
            (1, "Regal", "Contagion"),
            (2, "Regal", "Hugo"),
            (3, "AMC", "Project X"),
            (4, "AMC", "Hugo"),
            (5, "Cinemark", "Hugo"),
        ];
        for (id, cin, mov) in rows {
            db.insert("M", vec![Value::int(id), Value::str(cin), Value::str(mov)])
                .unwrap();
        }
        db.create_table("C", &["user", "friend"]).unwrap();
        let friends = [
            ("Chris", "Jonny"),
            ("Chris", "Guy"),
            ("Guy", "Chris"),
            ("Guy", "Jonny"),
            ("Jonny", "Chris"),
            ("Jonny", "Will"),
            ("Will", "Chris"),
            ("Will", "Guy"),
        ];
        for (u, f) in friends {
            db.insert("C", vec![Value::str(u), Value::str(f)]).unwrap();
        }
        db
    }

    pub(crate) fn movies_config() -> ConsistentConfig {
        ConsistentConfig::new("M", "movie_id", &["cinema"], &["movie"], "C")
    }

    /// The four band-member queries of the movies example.
    pub(crate) fn movies_queries() -> Vec<ConsistentQuery> {
        vec![
            // Chris: Contagion at Regal, with Will (named, not a friend!).
            ConsistentQuery::for_user("Chris", 1, 1)
                .with_named_partner("Will")
                .coord_const(0, "Regal")
                .personal_const(0, "Contagion"),
            // Guy: Project X at AMC, with any friend.
            ConsistentQuery::for_user("Guy", 1, 1)
                .with_any_friend()
                .coord_const(0, "AMC")
                .personal_const(0, "Project X"),
            // Jonny: Hugo anywhere, with any friend.
            ConsistentQuery::for_user("Jonny", 1, 1)
                .with_any_friend()
                .personal_const(0, "Hugo"),
            // Will: Hugo anywhere, with any friend.
            ConsistentQuery::for_user("Will", 1, 1)
                .with_any_friend()
                .personal_const(0, "Hugo"),
        ]
    }

    #[test]
    fn option_lists_match_paper_table() {
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let out = coord.run(&movies_queries()).unwrap();
        let as_strs = |l: &Vec<CoordValue>| {
            l.iter()
                .map(|v| v[0].as_str().unwrap().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(as_strs(&out.option_lists[0]), vec!["Regal"]);
        assert_eq!(as_strs(&out.option_lists[1]), vec!["AMC"]);
        assert_eq!(
            as_strs(&out.option_lists[2]),
            vec!["AMC", "Cinemark", "Regal"]
        );
        assert_eq!(
            as_strs(&out.option_lists[3]),
            vec!["AMC", "Cinemark", "Regal"]
        );
    }

    #[test]
    fn cinemark_cleans_to_empty_regal_and_amc_survive() {
        // Paper walkthrough: G_Cinemark = {Jonny, Will}; Will has no friend
        // there (his friends are Chris and Guy) so he is removed, then
        // Jonny follows — Cinemark cleans to ∅. G_Regal = {Chris, Jonny,
        // Will} survives with size 3 (and so does G_AMC with {Guy, Jonny,
        // Will}); both are maximal, and the algorithm picks one
        // deterministically.
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let out = coord.run(&movies_queries()).unwrap();

        let size_of = |name: &str| {
            out.per_value
                .iter()
                .find(|(v, _)| v[0].as_str() == Some(name))
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(size_of("Cinemark"), 0);
        assert_eq!(size_of("Regal"), 3);
        assert_eq!(size_of("AMC"), 3);
        assert_eq!(out.best.as_ref().unwrap().members.len(), 3);
    }

    #[test]
    fn regal_walkthrough_without_guy() {
        // Dropping Guy's query makes Regal the unique winner: at AMC Will
        // has no friend left (Chris is not there), so AMC cleans to ∅.
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let queries: Vec<ConsistentQuery> = movies_queries()
            .into_iter()
            .filter(|q| q.user != Value::str("Guy"))
            .collect();
        let out = coord.run(&queries).unwrap();
        let best = out.best.as_ref().unwrap();
        assert_eq!(best.value[0], Value::str("Regal"));
        assert_eq!(best.members, vec![0, 1, 2]); // Chris, Jonny, Will

        // Assignments per the paper's tables: Chris → Contagion at Regal
        // (movie id 1), Jonny and Will → Hugo at Regal (movie id 2).
        let key_of = |user: &str| {
            best.assignment
                .iter()
                .find(|(u, _)| u.as_str() == Some(user))
                .map(|(_, k)| k.clone())
                .unwrap()
        };
        assert_eq!(key_of("Chris"), Value::int(1));
        assert_eq!(key_of("Jonny"), Value::int(2));
        assert_eq!(key_of("Will"), Value::int(2));
    }

    #[test]
    fn amc_keeps_guy_and_jonny_and_will() {
        // At AMC: Guy (Project X), Jonny & Will (Hugo). Chris is absent.
        // Guy's friends Chris/Jonny — Jonny present ✓. Jonny's friends
        // Chris/Will — Will present ✓. Will's friends Chris/Guy — Guy ✓.
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let out = coord.run(&movies_queries()).unwrap();
        let amc = out
            .per_value
            .iter()
            .find(|(v, _)| v[0].as_str() == Some("AMC"))
            .unwrap();
        assert_eq!(amc.1, 3);
        // Regal also has size 3; Regal must win only by tie-break order.
        // Both are valid maximum sets; the algorithm picks deterministically.
        assert!(out.best.as_ref().unwrap().members.len() == 3);
    }

    #[test]
    fn named_partner_must_be_present() {
        // Chris names Will; if Will submits nothing, Chris can never be
        // satisfied (his query is removed in cleaning for every value).
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let queries = vec![ConsistentQuery::for_user("Chris", 1, 1)
            .with_named_partner("Will")
            .coord_const(0, "Regal")];
        let out = coord.run(&queries).unwrap();
        assert!(out.best.is_none());
    }

    #[test]
    fn at_least_k_friends_generalization() {
        // Jonny wants ≥2 friends at the same cinema. His friends are Chris
        // and Will. At Regal all three are available.
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let queries = vec![
            ConsistentQuery::for_user("Chris", 1, 1).coord_const(0, "Regal"),
            ConsistentQuery::for_user("Jonny", 1, 1).with_at_least_friends(2),
            ConsistentQuery::for_user("Will", 1, 1).personal_const(0, "Hugo"),
        ];
        let out = coord.run(&queries).unwrap();
        let best = out.best.unwrap();
        assert_eq!(best.value[0], Value::str("Regal"));
        assert_eq!(best.members, vec![0, 1, 2]);

        // With ≥3 friends required, Jonny fails everywhere (he has 2).
        let queries2 = vec![
            ConsistentQuery::for_user("Chris", 1, 1).coord_const(0, "Regal"),
            ConsistentQuery::for_user("Jonny", 1, 1).with_at_least_friends(3),
            ConsistentQuery::for_user("Will", 1, 1).personal_const(0, "Hugo"),
        ];
        let out2 = coord.run(&queries2).unwrap();
        let best2 = out2.best.unwrap();
        assert!(!best2.members.contains(&1));
    }

    #[test]
    fn unsatisfiable_body_prunes_query() {
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let queries = vec![
            ConsistentQuery::for_user("Chris", 1, 1).personal_const(0, "Nonexistent Movie"),
            ConsistentQuery::for_user("Jonny", 1, 1).personal_const(0, "Hugo"),
        ];
        let out = coord.run(&queries).unwrap();
        assert!(out.option_lists[0].is_empty());
        // Jonny alone (no partner requirements) survives.
        let best = out.best.unwrap();
        assert_eq!(best.members, vec![1]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let seq = coord.run(&movies_queries()).unwrap();
        let par = coord.run_parallel(&movies_queries(), 4).unwrap();
        assert_eq!(seq.per_value, par.per_value);
        assert_eq!(
            seq.best.as_ref().map(|b| (&b.value, &b.members)),
            par.best.as_ref().map(|b| (&b.value, &b.members))
        );
    }

    #[test]
    fn db_query_count_is_linear() {
        // One option-list query per query, one friend lookup per query
        // that uses a friend-kind partner (3 of the 4: Chris only names
        // Will), plus |best| grounding queries.
        let db = movies_db();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();
        let out = coord.run(&movies_queries()).unwrap();
        let n = movies_queries().len();
        let best_len = out.best.as_ref().map_or(0, |b| b.members.len());
        assert_eq!(out.stats.db_queries, n + 3 + best_len);
        assert!(out.stats.db_queries <= 2 * n + best_len);
    }

    #[test]
    fn multiple_friendship_relations() {
        // Jonny's *colleagues* (a separate relation) include Guy, who is
        // not his friend: coordinating via the Colleagues table succeeds
        // where the friends table would fail.
        let mut db = movies_db();
        db.create_table("Colleagues", &["user", "peer"]).unwrap();
        db.insert("Colleagues", vec![Value::str("Jonny"), Value::str("Guy")])
            .unwrap();
        db.insert("Colleagues", vec![Value::str("Guy"), Value::str("Jonny")])
            .unwrap();
        let coord = ConsistentCoordinator::new(&db, movies_config()).unwrap();

        // Only Jonny and Guy submit; Jonny wants a colleague, Guy wants a
        // friend (Jonny is his friend). Both can see Hugo/Project X at AMC.
        let queries = vec![
            ConsistentQuery::for_user("Jonny", 1, 1)
                .with_any_friend_via("Colleagues")
                .personal_const(0, "Hugo"),
            ConsistentQuery::for_user("Guy", 1, 1)
                .with_any_friend()
                .coord_const(0, "AMC")
                .personal_const(0, "Project X"),
        ];
        let out = coord.run(&queries).unwrap();
        let best = out.best.unwrap();
        assert_eq!(best.value[0], Value::str("AMC"));
        assert_eq!(best.members, vec![0, 1]);

        // With the plain friends table instead, Jonny has no friend among
        // the submitters (his friends are Chris and Will): nothing
        // survives for Jonny, and Guy in turn loses his friend.
        let queries2 = vec![
            ConsistentQuery::for_user("Jonny", 1, 1)
                .with_any_friend()
                .personal_const(0, "Hugo"),
            ConsistentQuery::for_user("Guy", 1, 1)
                .with_any_friend()
                .coord_const(0, "AMC")
                .personal_const(0, "Project X"),
        ];
        let out2 = coord.run(&queries2).unwrap();
        assert!(out2.best.is_none());
    }

    #[test]
    fn any_friend_via_matches_entangled_encoding() {
        let mut db = movies_db();
        db.create_table("Colleagues", &["user", "peer"]).unwrap();
        db.insert("Colleagues", vec![Value::str("Jonny"), Value::str("Guy")])
            .unwrap();
        let config = movies_config();
        let q = ConsistentQuery::for_user("Jonny", 1, 1)
            .with_any_friend_via("Colleagues")
            .personal_const(0, "Hugo");
        let ent = q.to_entangled(&config, &db).unwrap();
        // The body must reference the Colleagues relation, not C.
        assert!(ent.body().iter().any(|a| a.relation == "Colleagues"));
        assert!(!ent.body().iter().any(|a| a.relation == "C"));
    }

    #[test]
    fn config_validation_rejects_bad_attrs() {
        let db = movies_db();
        let bad = ConsistentConfig::new("M", "movie_id", &["nonexistent"], &[], "C");
        assert!(ConsistentCoordinator::new(&db, bad).is_err());
    }
}
