//! Combined queries: unifying a set of entangled queries into one
//! conjunctive query and grounding it against the database.
//!
//! Both the Gupta et al. baseline and the SCC Coordination Algorithm work
//! by (a) unifying every postcondition atom in a candidate set with its
//! (unique, by safety) matching head atom, then (b) sending the union of
//! the member bodies — rewritten under the resulting Most General Unifier —
//! to the database as a single conjunctive query.

use crate::differential::GroundWork;
use crate::error::CoordError;
use crate::graphs::HeadIndex;
use crate::instance::QuerySet;
use crate::query::QueryId;
use crate::semantics::Grounding;
use crate::unify::{atoms_unifiable, Substitution, UnifyError};
use coord_db::{ConjunctiveQuery, Database, Term};

/// Unify every postcondition of every member with its matching head among
/// the members, starting from `subst` (usually the identity).
///
/// `index` must cover (at least) the heads of `members`; candidates
/// outside `members` are ignored. Requires that each postcondition has
/// **exactly one** unifiable head within `members` — guaranteed for
/// closed sets `R(q)` of a safe query set. Fails if a postcondition has
/// no match (the set cannot coordinate) or if the accumulated MGU becomes
/// inconsistent.
pub fn unify_members(
    qs: &QuerySet,
    members: &[QueryId],
    subst: Substitution,
    index: &HeadIndex,
) -> Result<Substitution, UnifyError> {
    unify_members_counted(qs, members, subst, index, &mut GroundWork::default())
}

/// [`unify_members`], tallying one [`GroundWork::unified`] operation per
/// postcondition–head MGU merge — the per-closure unification cost the
/// differential evaluation layer keeps proportional to the delta.
pub fn unify_members_counted(
    qs: &QuerySet,
    members: &[QueryId],
    mut subst: Substitution,
    index: &HeadIndex,
    work: &mut GroundWork,
) -> Result<Substitution, UnifyError> {
    debug_assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "members must be sorted"
    );
    let in_members = |q: QueryId| members.binary_search(&q).is_ok();
    for &m in members {
        for (p_local, p) in qs
            .query(m)
            .postconditions()
            .iter()
            .zip(qs.postconditions(m))
        {
            // Find the unique matching head among members (index lookup on
            // the query-local atom, confirmation + unification on the
            // globalized atoms).
            let mut matched = None;
            for (dst, hi) in index.candidates(p_local) {
                if in_members(dst) && atoms_unifiable(p_local, &qs.query(dst).heads()[hi]) {
                    matched = Some(qs.globalize(dst, &qs.query(dst).heads()[hi]));
                    break;
                }
            }
            match matched {
                Some(h) => {
                    subst.unify_atoms(&p, &h)?;
                    work.unified += 1;
                }
                None => {
                    // No producer for this postcondition: unsatisfiable.
                    return Err(UnifyError::RelationMismatch {
                        left: p.relation.to_string(),
                        right: "<no matching head>".to_string(),
                    });
                }
            }
        }
    }
    Ok(subst)
}

/// Build the combined conjunctive query: all body atoms of `members`
/// rewritten under `subst`.
pub fn combined_body(
    qs: &QuerySet,
    members: &[QueryId],
    subst: &mut Substitution,
) -> ConjunctiveQuery {
    combined_body_counted(qs, members, subst, &mut GroundWork::default())
}

/// [`combined_body`], tallying one [`GroundWork::rewritten`] operation per
/// body atom rewritten under the MGU. Differential evaluation reuses
/// cached fragments instead of paying this per closure.
pub fn combined_body_counted(
    qs: &QuerySet,
    members: &[QueryId],
    subst: &mut Substitution,
    work: &mut GroundWork,
) -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for &m in members {
        for atom in qs.body(m) {
            atoms.push(subst.apply(&atom));
            work.rewritten += 1;
        }
    }
    ConjunctiveQuery::new(atoms)
}

/// Ground a unified member set against the database with **one**
/// conjunctive query.
///
/// Returns a total [`Grounding`] over all variables of the members, or
/// `None` if the combined query has no satisfying assignment. Variables
/// that are not constrained by any body atom (legal under Definition 1,
/// which only requires them to take *some* domain value) default to an
/// arbitrary value from the database's active domain.
pub fn ground_members(
    db: &Database,
    qs: &QuerySet,
    members: &[QueryId],
    subst: &mut Substitution,
) -> Result<Option<Grounding>, CoordError> {
    let cq = combined_body(qs, members, subst);
    ground_assembled(db, qs, members, subst, &cq)
}

/// Ground a pre-assembled combined query: [`ground_members`] with the
/// body-rewriting step factored out, so differential evaluation can feed
/// in a query assembled from cached fragments.
pub fn ground_assembled(
    db: &Database,
    qs: &QuerySet,
    members: &[QueryId],
    subst: &mut Substitution,
    cq: &ConjunctiveQuery,
) -> Result<Option<Grounding>, CoordError> {
    let Some(assignment) = db.find_one(cq)? else {
        return Ok(None);
    };

    let mut grounding = Grounding::new();
    let mut default_value = None;
    for &m in members {
        for v in qs.vars_of(m) {
            // Resolve through the substitution first, then the DB valuation.
            let value = match subst.resolve(&Term::Var(v)) {
                Term::Const(c) => Some(c),
                Term::Var(rep) => assignment.get(rep).cloned(),
            };
            let value = match value {
                Some(c) => c,
                None => {
                    // Unconstrained variable: any domain value will do.
                    if default_value.is_none() {
                        default_value = db.any_domain_value();
                    }
                    match &default_value {
                        Some(c) => c.clone(),
                        None => return Ok(None), // empty domain: condition (1) unsatisfiable
                    }
                }
            };
            grounding.set(v, value);
        }
    }
    Ok(Some(grounding))
}

/// Convenience: unify and ground `members` (sorted ascending) in one
/// step, starting from the identity substitution.
pub fn coordinate_members(
    db: &Database,
    qs: &QuerySet,
    members: &[QueryId],
) -> Result<Option<Grounding>, CoordError> {
    let index = HeadIndex::build(qs);
    let subst = Substitution::identity(qs.total_vars());
    let Ok(mut subst) = unify_members(qs, members, subst, &index) else {
        return Ok(None);
    };
    ground_members(db, qs, members, &mut subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryBuilder;
    use crate::semantics::check_coordinating_set;
    use coord_db::{Value, Var};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db.insert("Flights", vec![Value::int(102), Value::str("Paris")])
            .unwrap();
        db
    }

    fn gwyneth_chris() -> QuerySet {
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Zurich"))
            .build()
            .unwrap();
        QuerySet::new(vec![q1, q2])
    }

    #[test]
    fn unify_links_postcondition_to_head() {
        let qs = gwyneth_chris();
        let members = [QueryId(0), QueryId(1)];
        let index = HeadIndex::build(&qs);
        let mut s = unify_members(
            &qs,
            &members,
            Substitution::identity(qs.total_vars()),
            &index,
        )
        .unwrap();
        // x (global 0) and y (global 1) must be in the same class.
        assert_eq!(s.find(Var(0)), s.find(Var(1)));
    }

    #[test]
    fn ground_produces_verified_coordinating_set() {
        let db = db();
        let qs = gwyneth_chris();
        let members = [QueryId(0), QueryId(1)];
        let g = coordinate_members(&db, &qs, &members).unwrap().unwrap();
        check_coordinating_set(&db, &qs, &members, &g).unwrap();
        // Both fly on flight 101 (the only Zurich flight).
        assert_eq!(g.get(Var(0)), Some(&Value::int(101)));
        assert_eq!(g.get(Var(1)), Some(&Value::int(101)));
    }

    #[test]
    fn grounding_fails_when_no_flight() {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(1), Value::str("Oslo")])
            .unwrap();
        let qs = gwyneth_chris();
        let members = [QueryId(0), QueryId(1)];
        assert!(coordinate_members(&db, &qs, &members).unwrap().is_none());
    }

    #[test]
    fn unmatched_postcondition_fails_unification() {
        let qs = gwyneth_chris();
        // q1 alone: its postcondition R(Chris, x) has no head.
        let members = [QueryId(0)];
        let index = HeadIndex::build(&qs);
        assert!(unify_members(
            &qs,
            &members,
            Substitution::identity(qs.total_vars()),
            &index
        )
        .is_err());
    }

    #[test]
    fn conflicting_destinations_fail() {
        // Gwyneth wants Zurich, Chris wants Paris; unification succeeds
        // (different flight-id variables merge) but grounding fails since
        // no single flight goes to both.
        let q1 = QueryBuilder::new("q1")
            .postcondition("R", |a| a.constant("Chris").var("x"))
            .head("R", |a| a.constant("Gwyneth").var("x"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let q2 = QueryBuilder::new("q2")
            .head("R", |a| a.constant("Chris").var("y"))
            .body("Flights", |a| a.var("y").constant("Paris"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![q1, q2]);
        let db = db();
        let members = [QueryId(0), QueryId(1)];
        assert!(coordinate_members(&db, &qs, &members).unwrap().is_none());
    }

    #[test]
    fn unconstrained_head_var_gets_domain_value() {
        // A head variable not mentioned in the body is assigned an
        // arbitrary domain value (Definition 1 condition (1)).
        let q = QueryBuilder::new("free")
            .head("R", |a| a.constant("Me").var("anything"))
            .body("Flights", |a| a.var("x").constant("Zurich"))
            .build()
            .unwrap();
        let qs = QuerySet::new(vec![q]);
        let db = db();
        let g = coordinate_members(&db, &qs, &[QueryId(0)])
            .unwrap()
            .unwrap();
        assert_eq!(g.len(), 2);
        check_coordinating_set(&db, &qs, &[QueryId(0)], &g).unwrap();
    }

    #[test]
    fn one_db_query_issued_per_grounding() {
        let db = db();
        let qs = gwyneth_chris();
        db.stats().reset();
        let _ = coordinate_members(&db, &qs, &[QueryId(0), QueryId(1)]).unwrap();
        assert_eq!(db.stats().find_one_count(), 1);
    }
}
