//! Property tests pinning the indexed candidate enumeration to the
//! naive all-pairs sweep it replaced: on random query sets mixing
//! constant, variable and wildcard-first-argument atoms, graph
//! construction, the safety check and SCC preprocessing must produce
//! *identical* results whether candidates come from the shared
//! (relation, first-arg constant) index or from pairing every
//! postcondition with every head. The naive loops below are the
//! test-only oracle; the instrumented unify-call counter is additionally
//! asserted to never exceed the all-pairs figure.

use coord_core::graphs::{
    extended_coordination_graph_counted, is_safe, safety_violations, safety_violations_counted,
    SafetyViolation,
};
use coord_core::scc::preprocess;
use coord_core::unify::{atoms_unifiable, UnifyCounter};
use coord_core::{EntangledQuery, QueryId, QuerySet};
use coord_db::{Atom, Database, Term, Value, Var};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One randomly shaped atom term: a small constant or a variable.
/// Variables in the *first* position are the wildcard case the index
/// must handle by scanning every bucket of the relation.
#[derive(Clone, Debug)]
enum TermSpec {
    Const(i64),
    Var,
}

/// One atom: relation 0 = binary `R`, relation 1 = unary `S` (arity is
/// fixed per relation so random sets satisfy answer-arity validation).
type AtomSpec = (bool, Vec<TermSpec>);

#[derive(Clone, Debug)]
struct QuerySpec {
    heads: Vec<AtomSpec>,
    posts: Vec<AtomSpec>,
}

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        (0i64..3).prop_map(TermSpec::Const),
        Just(TermSpec::Var),
        Just(TermSpec::Var),
    ]
}

fn atom_strategy() -> impl Strategy<Value = AtomSpec> {
    (
        prop::arbitrary::any::<bool>(),
        prop::collection::vec(term_strategy(), 2..=2),
    )
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec(atom_strategy(), 1..=2),
        prop::collection::vec(atom_strategy(), 0..=2),
    )
        .prop_map(|(heads, posts)| QuerySpec { heads, posts })
}

fn spec_strategy() -> impl Strategy<Value = Vec<QuerySpec>> {
    prop::collection::vec(query_strategy(), 1..8)
}

/// Materialize a spec: every atom gets fresh variables where requested,
/// every body is the satisfiable `T(x)`.
fn build_queries(specs: &[QuerySpec]) -> Vec<EntangledQuery> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut next_var = 0u32;
            let mut var_names: Vec<String> = Vec::new();
            let mut atom = |&(binary, ref terms): &AtomSpec| {
                let (rel, arity) = if binary { ("R", 2) } else { ("S", 1) };
                let terms: Vec<Term> = terms
                    .iter()
                    .take(arity)
                    .map(|t| match t {
                        TermSpec::Const(c) => Term::Const(Value::int(*c)),
                        TermSpec::Var => {
                            let v = Term::Var(Var(next_var));
                            var_names.push(format!("v{next_var}"));
                            next_var += 1;
                            v
                        }
                    })
                    .collect();
                Atom::new(rel, terms)
            };
            let posts: Vec<Atom> = spec.posts.iter().map(&mut atom).collect();
            let heads: Vec<Atom> = spec.heads.iter().map(&mut atom).collect();
            let body = vec![{
                let v = Term::Var(Var(next_var));
                var_names.push("body".to_string());
                next_var += 1;
                Atom::new("T", vec![v])
            }];
            let _ = next_var;
            EntangledQuery::new(format!("q{i}"), posts, heads, body, var_names).unwrap()
        })
        .collect()
}

fn test_db() -> Database {
    let mut db = Database::new();
    db.create_table("T", &["id"]).unwrap();
    db.insert("T", vec![Value::int(1)]).unwrap();
    db
}

/// The labelled edge set of the extended coordination graph, as a
/// comparable set of (src, dst, post_idx, head_idx).
type EdgeSet = BTreeSet<(usize, usize, usize, usize)>;

/// Naive all-pairs oracle for the extended coordination graph: pair
/// every postcondition of every query with every head of every query.
/// Returns the edge set and the number of unifiability tests — the
/// Θ(posts × heads) figure the index must undercut.
fn naive_extended_edges(qs: &QuerySet) -> (EdgeSet, u64) {
    let mut edges = EdgeSet::new();
    let mut tests = 0u64;
    for src in qs.ids() {
        for (pi, p) in qs.query(src).postconditions().iter().enumerate() {
            for dst in qs.ids() {
                for (hi, h) in qs.query(dst).heads().iter().enumerate() {
                    tests += 1;
                    if atoms_unifiable(p, h) {
                        edges.insert((src.index(), dst.index(), pi, hi));
                    }
                }
            }
        }
    }
    (edges, tests)
}

/// Naive all-pairs safety check (Definition 2, straight off the paper).
fn naive_safety_violations(qs: &QuerySet) -> Vec<SafetyViolation> {
    let mut out = Vec::new();
    for src in qs.ids() {
        for (pi, p) in qs.query(src).postconditions().iter().enumerate() {
            let matches = qs
                .ids()
                .flat_map(|dst| qs.query(dst).heads().iter())
                .filter(|h| atoms_unifiable(p, h))
                .count();
            if matches > 1 {
                out.push(SafetyViolation {
                    query: src,
                    post_idx: pi,
                });
            }
        }
    }
    out
}

/// Naive all-pairs preprocessing fixpoint: iteratively drop queries with
/// a postcondition no active head can satisfy.
fn naive_removed(qs: &QuerySet) -> Vec<QueryId> {
    let mut active = vec![true; qs.len()];
    loop {
        let mut changed = false;
        for src in qs.ids() {
            if !active[src.index()] {
                continue;
            }
            let ok = qs.query(src).postconditions().iter().all(|p| {
                qs.ids().any(|dst| {
                    active[dst.index()]
                        && qs.query(dst).heads().iter().any(|h| atoms_unifiable(p, h))
                })
            });
            if !ok {
                active[src.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    qs.ids().filter(|q| !active[q.index()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Indexed extended-graph construction yields exactly the naive
    /// all-pairs edge set, and the instrumented counter never exceeds
    /// the all-pairs test count.
    #[test]
    fn indexed_extended_graph_equals_all_pairs(specs in spec_strategy()) {
        let qs = QuerySet::new(build_queries(&specs));
        let mut counter = UnifyCounter::new();
        let g = extended_coordination_graph_counted(&qs, &mut counter);

        let mut indexed = EdgeSet::new();
        for e in g.edge_ids() {
            let (u, v) = g.endpoints(e);
            let label = g.edge(e);
            indexed.insert((u.index(), v.index(), label.post_idx, label.head_idx));
        }

        let (naive, naive_tests) = naive_extended_edges(&qs);
        prop_assert_eq!(&indexed, &naive);
        prop_assert!(
            counter.calls() <= naive_tests,
            "index examined {} pairs, all-pairs would examine {}",
            counter.calls(),
            naive_tests
        );
    }

    /// Indexed safety checking flags exactly the naive violations.
    #[test]
    fn indexed_safety_equals_all_pairs(specs in spec_strategy()) {
        let qs = QuerySet::new(build_queries(&specs));
        let mut counter = UnifyCounter::new();
        let indexed = safety_violations_counted(&qs, &mut counter);
        prop_assert_eq!(indexed, naive_safety_violations(&qs));
        // Consistency of the uncounted wrapper.
        prop_assert_eq!(safety_violations(&qs), naive_safety_violations(&qs));
    }

    /// On safe sets, `preprocess` removes exactly the queries the naive
    /// fixpoint removes, and its graph restricts the naive edge set to
    /// the active queries.
    #[test]
    fn indexed_preprocess_equals_all_pairs(specs in spec_strategy()) {
        let queries = build_queries(&specs);
        let qs = QuerySet::new(queries.clone());
        prop_assume!(is_safe(&qs));

        let db = test_db();
        let pre = preprocess(&db, &queries).unwrap();
        prop_assert_eq!(&pre.removed, &naive_removed(&qs));

        let removed: BTreeSet<usize> = pre.removed.iter().map(|q| q.index()).collect();
        let (naive_ext, naive_tests) = naive_extended_edges(&qs);
        let naive_collapsed: BTreeSet<(usize, usize)> = naive_ext
            .iter()
            .filter(|(u, v, _, _)| !removed.contains(u) && !removed.contains(v))
            .map(|&(u, v, _, _)| (u, v))
            .collect();
        let indexed_collapsed: BTreeSet<(usize, usize)> = pre
            .graph
            .edge_ids()
            .map(|e| {
                let (u, v) = pre.graph.endpoints(e);
                (u.index(), v.index())
            })
            .collect();
        prop_assert_eq!(indexed_collapsed, naive_collapsed);
        // The whole preprocessing pipeline must not do more unifiability
        // work than an all-pairs sweep per phase would: safety + graph
        // construction are one sweep each, and the removal fixpoint runs
        // at most |removed| + 2 rounds of at most one sweep.
        let phases = pre.removed.len() as u64 + 4;
        prop_assert!(
            pre.unify_calls <= phases * naive_tests.max(1),
            "preprocess performed {} tests vs all-pairs phase cost {}",
            pre.unify_calls,
            naive_tests
        );
    }
}
