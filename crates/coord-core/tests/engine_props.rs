//! Engine correctness under online arrival: the incremental
//! `coord-engine`-backed path cross-checked against the full-rebuild
//! baseline and a fresh batch `SccCoordinator` run, plus a
//! multi-threaded stress test of the sharded engine.
//!
//! Workloads are disjoint chains and cycles in the `partner_query` shape
//! (`R(user, tuple)` answer atoms), where the atom index's key-level
//! candidates coincide exactly with the unifiable pairs and no two
//! candidate coordinating sets tie in size — so the incremental and
//! rebuild engines must agree *exactly*, step by step.

use coord_core::engine::{CoordinationEngine, RebuildEngine, SharedEngine};
use coord_core::scc::SccCoordinator;
use coord_core::{EntangledQuery, QueryBuilder};
use coord_db::{Database, Value};
use proptest::prelude::*;
use rand::prelude::*;

/// The `coord-gen` partner-query shape, inlined (coord-core cannot
/// depend on coord-gen without cycling the workspace DAG):
/// `q_i = {R(u_p, y_p) : p ∈ partners}  R(u_i, x)  :-  S(x, t_{i%5})`.
fn partner_query(i: usize, partners: &[usize]) -> EntangledQuery {
    let mut b = QueryBuilder::new(format!("q{i}"));
    for &p in partners {
        let y = format!("y{p}");
        b = b.postcondition("R", |a| a.constant(format!("u{p}")).var(&y));
    }
    b.head("R", |a| a.constant(format!("u{i}")).var("x"))
        .body("S", |a| a.var("x").constant(format!("t{}", i % 5)))
        .build()
        .unwrap()
}

/// A tuple-pool table matching the workload bodies.
fn pool_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.create_table("S", &["id", "tag"]).unwrap();
    for r in 0..rows {
        db.insert(
            "S",
            vec![Value::int(r as i64), Value::str(format!("t{}", r % 5))],
        )
        .unwrap();
    }
    db
}

/// One group: `size` queries with user ids `offset..offset+size`, in a
/// chain (last member free) or a cycle.
fn group(offset: usize, size: usize, cycle: bool) -> Vec<EntangledQuery> {
    (0..size)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < size {
                vec![offset + i + 1]
            } else if cycle && size > 1 {
                vec![offset]
            } else {
                vec![]
            };
            partner_query(offset + i, &partners)
        })
        .collect()
}

/// Interleave the groups' members into one arrival order, driven by the
/// seed.
fn interleave(groups: Vec<Vec<EntangledQuery>>, seed: u64) -> Vec<EntangledQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queues: Vec<std::collections::VecDeque<EntangledQuery>> =
        groups.into_iter().map(Into::into).collect();
    let mut order = Vec::new();
    while queues.iter().any(|q| !q.is_empty()) {
        let pick = rng.random_range(0..queues.len());
        if let Some(q) = queues[pick].pop_front() {
            order.push(q);
        }
    }
    order
}

fn sorted_names(queries: impl IntoIterator<Item = String>) -> Vec<String> {
    let mut names: Vec<String> = queries.into_iter().collect();
    names.sort_unstable();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Step-by-step equivalence: every submit delivers the same answer
    /// set and leaves the same pending set as the full-rebuild baseline;
    /// at the end, a fresh batch `SccCoordinator` over the remaining
    /// pending set finds nothing left to coordinate (everything
    /// coordinatable was delivered online).
    #[test]
    fn incremental_engine_matches_rebuild_and_fresh_batch(
        shapes in prop::collection::vec((prop::arbitrary::any::<bool>(), 1usize..=5), 1..=4),
        seed in prop::arbitrary::any::<u64>(),
    ) {
        let db = pool_db(64);
        let groups: Vec<Vec<EntangledQuery>> = shapes
            .iter()
            .enumerate()
            .map(|(g, &(cycle, size))| group(100 * g, size, cycle))
            .collect();
        let arrivals = interleave(groups, seed);

        let mut incremental = CoordinationEngine::new(&db);
        let mut rebuild = RebuildEngine::new(&db);
        for query in arrivals {
            let a = incremental.submit(query.clone()).unwrap();
            let b = rebuild.submit(query).unwrap();
            prop_assert_eq!(
                sorted_names(a.answers.iter().map(|x| x.query.clone())),
                sorted_names(b.answers.iter().map(|x| x.query.clone())),
                "delivered sets diverged"
            );
            // Same answers, not just same members.
            let mut a_sorted = a.answers.clone();
            let mut b_sorted = b.answers.clone();
            a_sorted.sort_by(|x, y| x.query.cmp(&y.query));
            b_sorted.sort_by(|x, y| x.query.cmp(&y.query));
            prop_assert_eq!(a_sorted, b_sorted, "answer bindings diverged");
            prop_assert_eq!(
                sorted_names(incremental.pending().iter().map(|q| q.name().to_string())),
                sorted_names(rebuild.pending().iter().map(|q| q.name().to_string())),
                "pending sets diverged"
            );
            incremental.validate_invariants();
        }
        prop_assert_eq!(incremental.delivered(), rebuild.delivered());

        // Fresh batch cross-check over the same pending set: the online
        // loop must have drained every coordinatable set.
        let pending: Vec<EntangledQuery> =
            incremental.pending().into_iter().cloned().collect();
        let batch = SccCoordinator::new(&db).run(&pending).unwrap();
        prop_assert!(
            batch.best().is_none(),
            "engine left a coordinatable set pending: {:?}",
            batch.best_names()
        );
    }

    /// Batch submission agrees with one-at-a-time submission: the same
    /// arrivals chopped into batches deliver the same answers at each
    /// step and leave the same pending set (the batch path acquires the
    /// routing table once per batch instead of twice per query).
    #[test]
    fn batch_submit_matches_sequential(
        shapes in prop::collection::vec((prop::arbitrary::any::<bool>(), 1usize..=5), 1..=4),
        seed in prop::arbitrary::any::<u64>(),
        batch_size in 1usize..=6,
    ) {
        let db = pool_db(64);
        let groups: Vec<Vec<EntangledQuery>> = shapes
            .iter()
            .enumerate()
            .map(|(g, &(cycle, size))| group(100 * g, size, cycle))
            .collect();
        let arrivals = interleave(groups, seed);

        let mut reference = CoordinationEngine::new(&db);
        let batched = SharedEngine::with_shards(&db, 3);
        for chunk in arrivals.chunks(batch_size) {
            let results = batched.submit_batch(chunk.to_vec());
            prop_assert_eq!(results.len(), chunk.len());
            for (q, r) in chunk.iter().zip(results) {
                let a = reference.submit(q.clone()).unwrap();
                let b = r.unwrap();
                prop_assert_eq!(
                    sorted_names(a.answers.iter().map(|x| x.query.clone())),
                    sorted_names(b.answers.iter().map(|x| x.query.clone())),
                    "batched delivery diverged"
                );
            }
        }
        prop_assert_eq!(reference.delivered(), batched.delivered());
        prop_assert_eq!(reference.pending().len(), batched.pending_count());
        prop_assert_eq!(
            sorted_names(reference.pending().iter().map(|q| q.name().to_string())),
            sorted_names(batched.pending().iter().map(|q| q.name().to_string()))
        );
    }

    /// The sharded engine agrees with the single-threaded incremental
    /// engine when driven sequentially.
    #[test]
    fn sharded_engine_matches_sequential(
        shapes in prop::collection::vec((prop::arbitrary::any::<bool>(), 1usize..=5), 1..=4),
        seed in prop::arbitrary::any::<u64>(),
    ) {
        let db = pool_db(64);
        let groups: Vec<Vec<EntangledQuery>> = shapes
            .iter()
            .enumerate()
            .map(|(g, &(cycle, size))| group(100 * g, size, cycle))
            .collect();
        let arrivals = interleave(groups, seed);

        let mut reference = CoordinationEngine::new(&db);
        let sharded = SharedEngine::with_shards(&db, 3);
        for query in arrivals {
            let a = reference.submit(query.clone()).unwrap();
            let b = sharded.submit(query).unwrap();
            prop_assert_eq!(
                sorted_names(a.answers.iter().map(|x| x.query.clone())),
                sorted_names(b.answers.iter().map(|x| x.query.clone()))
            );
        }
        prop_assert_eq!(reference.delivered(), sharded.delivered());
        prop_assert_eq!(reference.pending().len(), sharded.pending_count());
    }
}

/// Hammer disjoint components through the sharded engine from many
/// threads: every chain must coordinate exactly once, with no lost or
/// duplicated deliveries.
#[test]
fn sharded_engine_stress_disjoint_components() {
    const THREADS: usize = 8;
    const CHAINS_PER_THREAD: usize = 6;
    const CHAIN: usize = 5;

    let db = pool_db(256);
    let engine = SharedEngine::with_shards(&db, THREADS);
    let total = THREADS * CHAINS_PER_THREAD * CHAIN;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            s.spawn(move || {
                for c in 0..CHAINS_PER_THREAD {
                    // Head → … → free tail: the tail's arrival delivers
                    // the whole chain.
                    let offset = 10_000 * t + 100 * c;
                    let chain = group(offset, CHAIN, false);
                    for (i, q) in chain.into_iter().enumerate() {
                        let r = engine.submit(q).unwrap();
                        assert_eq!(
                            r.coordinated(),
                            i == CHAIN - 1,
                            "thread {t} chain {c} member {i}"
                        );
                        if i == CHAIN - 1 {
                            assert_eq!(r.answers.len(), CHAIN);
                        }
                    }
                }
            });
        }
    });

    assert_eq!(engine.delivered(), total);
    assert_eq!(engine.pending_count(), 0);
    let snap = engine.metrics();
    assert_eq!(snap.submits, total as u64);
    assert_eq!(snap.delivered, total as u64);
    // Disjoint components must have spread over several shards.
    let active_shards = engine
        .shard_stats()
        .iter()
        .filter(|s| s.submits > 0)
        .count();
    assert!(
        active_shards >= 2,
        "all load on one shard: {:?}",
        engine.shard_stats()
    );
}

/// Components bridged *across* shards still coordinate correctly: two
/// halves of each cycle are submitted from different threads, forcing
/// migrations whenever the halves were routed to different shards.
#[test]
fn sharded_engine_stress_cross_shard_bridges() {
    const CYCLES: usize = 12;
    const HALF: usize = 3;

    let db = pool_db(256);
    let engine = SharedEngine::with_shards(&db, 4);

    // Cycle over users [offset .. offset+2*HALF): thread A submits the
    // first half, thread B the second; the closing member can arrive
    // from either side.
    let make_member = |offset: usize, i: usize| {
        let size = 2 * HALF;
        let partner = offset + (i + 1) % size;
        partner_query(offset + i, &[partner])
    };

    std::thread::scope(|s| {
        for half in 0..2 {
            let engine = &engine;
            s.spawn(move || {
                for c in 0..CYCLES {
                    let offset = 1_000 * c;
                    for i in (half * HALF)..((half + 1) * HALF) {
                        engine.submit(make_member(offset, i)).unwrap();
                    }
                }
            });
        }
    });

    // Every cycle coordinates only when complete; all must have been
    // delivered by whichever thread closed them.
    assert_eq!(engine.delivered(), CYCLES * 2 * HALF);
    assert_eq!(engine.pending_count(), 0);
}
