//! Property tests for the unification substrate: the substitution must
//! behave like a congruence-closure over variable classes with constant
//! bindings.

use coord_core::unify::{atoms_unifiable, Substitution, UnifyError};
use coord_db::{Atom, Term, Value, Var};
use proptest::prelude::*;

const N_VARS: u32 = 8;

#[derive(Clone, Debug)]
enum Op {
    Union(u32, u32),
    Bind(u32, i64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..N_VARS, 0..N_VARS).prop_map(|(a, b)| Op::Union(a, b)),
            (0..N_VARS, 0i64..3).prop_map(|(v, c)| Op::Bind(v, c)),
        ],
        0..24,
    )
}

/// Apply ops, ignoring failures (conflicts), and return the substitution
/// together with a naive model: per-variable class ids and class values
/// maintained by brute force.
fn apply_ops(ops: &[Op]) -> (Substitution, Vec<usize>, Vec<Option<i64>>) {
    let mut s = Substitution::identity(N_VARS);
    // Naive model: class id per var, value per class (indexed by class id).
    let mut class: Vec<usize> = (0..N_VARS as usize).collect();
    let mut value: Vec<Option<i64>> = vec![None; N_VARS as usize];

    for op in ops {
        match *op {
            Op::Union(a, b) => {
                let (ca, cb) = (class[a as usize], class[b as usize]);
                let expect_conflict = matches!(
                    (value[ca], value[cb]),
                    (Some(x), Some(y)) if x != y
                ) && ca != cb;
                let r = s.union(Var(a), Var(b));
                assert_eq!(r.is_err(), expect_conflict, "union({a},{b})");
                if r.is_ok() && ca != cb {
                    let merged = value[ca].or(value[cb]);
                    for c in &mut class {
                        if *c == cb {
                            *c = ca;
                        }
                    }
                    value[ca] = merged;
                }
            }
            Op::Bind(v, c) => {
                let cv = class[v as usize];
                let expect_conflict = matches!(value[cv], Some(x) if x != c);
                let r = s.bind(Var(v), Value::int(c));
                assert_eq!(r.is_err(), expect_conflict, "bind({v},{c})");
                if r.is_ok() {
                    value[cv] = Some(c);
                }
            }
        }
    }
    (s, class, value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The union-find substitution agrees with a naive class model after
    /// any sequence of unions and binds.
    #[test]
    fn substitution_matches_naive_model(ops in ops_strategy()) {
        let (mut s, class, value) = apply_ops(&ops);
        for a in 0..N_VARS {
            for b in 0..N_VARS {
                let same_naive = class[a as usize] == class[b as usize];
                let same_uf = s.find(Var(a)) == s.find(Var(b));
                prop_assert_eq!(same_naive, same_uf, "vars {} {}", a, b);
            }
            let naive_val = value[class[a as usize]].map(Value::int);
            prop_assert_eq!(s.value_of(Var(a)), naive_val, "value of {}", a);
        }
    }

    /// `resolve` is idempotent: resolving a resolved term changes nothing.
    #[test]
    fn resolve_is_idempotent(ops in ops_strategy(), v in 0..N_VARS) {
        let (mut s, _, _) = apply_ops(&ops);
        let once = s.resolve(&Term::Var(Var(v)));
        let twice = s.resolve(&once);
        prop_assert_eq!(once, twice);
    }

    /// Unifying an atom with itself always succeeds and is a no-op on
    /// class structure.
    #[test]
    fn self_unification_is_trivial(ops in ops_strategy(), args in prop::collection::vec(0..N_VARS, 1..4)) {
        let (mut s, _, _) = apply_ops(&ops);
        let atom = Atom::new("R", args.iter().map(|&v| Term::Var(Var(v))).collect());
        let before: Vec<Var> = (0..N_VARS).map(|v| s.find(Var(v))).collect();
        s.unify_atoms(&atom, &atom).unwrap();
        let after: Vec<Var> = (0..N_VARS).map(|v| s.find(Var(v))).collect();
        prop_assert_eq!(before, after);
    }

    /// After successfully unifying two atoms, applying the substitution
    /// to both yields syntactically identical atoms.
    #[test]
    fn unified_atoms_become_identical(
        ops in ops_strategy(),
        left in prop::collection::vec(prop_oneof![
            (0..N_VARS).prop_map(|v| Term::Var(Var(v))),
            (0i64..3).prop_map(Term::constant),
        ], 2),
        right in prop::collection::vec(prop_oneof![
            (0..N_VARS).prop_map(|v| Term::Var(Var(v))),
            (0i64..3).prop_map(Term::constant),
        ], 2),
    ) {
        let (mut s, _, _) = apply_ops(&ops);
        let a = Atom::new("R", left);
        let b = Atom::new("R", right);
        prop_assume!(atoms_unifiable(&a, &b));
        match s.unify_atoms(&a, &b) {
            Ok(()) => {
                prop_assert_eq!(s.apply(&a), s.apply(&b));
            }
            Err(UnifyError::ConstantConflict { .. }) => {
                // Legal: prior bindings may make pairwise-unifiable atoms
                // inconsistent in context.
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}
