//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no network access to crates.io, so this
//! path-dependency stands in for the real crate. It wraps
//! [`std::sync::Mutex`] and mirrors parking_lot's panic-free `lock()`
//! signature (no `LockResult`); poisoning is ignored, matching
//! parking_lot's semantics of not poisoning on panic.

use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion primitive with parking_lot's `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
