//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build container has no network access to crates.io, so this
//! path-dependency stands in for the real crate. It wraps
//! [`std::sync::Mutex`] / [`std::sync::RwLock`] and mirrors parking_lot's
//! panic-free `lock()`/`read()`/`write()` signatures (no `LockResult`);
//! poisoning is ignored, matching parking_lot's semantics of not
//! poisoning on panic.

use std::sync::MutexGuard as StdMutexGuard;
use std::sync::{RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard};

/// A mutual-exclusion primitive with parking_lot's `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex::lock`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking. Returns `None` if
    /// it is currently held elsewhere (parking_lot returns `Option`, not
    /// `TryLockResult`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`
/// signatures. Backed by [`std::sync::RwLock`]; used by the sharded
/// coordination engine's read-mostly routing table.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never
    /// returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available. Never
    /// returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }

    #[test]
    fn rwlock_read_write_round_trips() {
        let l = RwLock::new(5);
        {
            // Multiple concurrent readers.
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!((*r1, *r2), (5, 5));
            // A writer cannot get in while readers hold the lock.
            assert!(l.try_write().is_none());
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_try_read_blocked_by_writer() {
        let l = RwLock::new(0);
        let w = l.write();
        assert!(l.try_read().is_none());
        drop(w);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let before = *l.read();
                        *l.write() += 1;
                        assert!(*l.read() > before);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 2000);
    }
}
