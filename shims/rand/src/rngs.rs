//! Concrete generators: xoshiro256** behind both [`StdRng`] and
//! [`SmallRng`] names. Statistical quality is ample for test-data
//! generation, and the implementation is dependency-free.

use crate::{RngCore, SeedableRng};

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn from_seed_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the seeding recipe the xoshiro authors
        // recommend; guarantees a nonzero state for any seed.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(state: u64) -> Self {
        Self::from_seed_u64(state)
    }
}

/// The workspace's standard generator.
pub type StdRng = Xoshiro256StarStar;

/// Alias for call sites that ask for a small/fast generator.
pub type SmallRng = Xoshiro256StarStar;
