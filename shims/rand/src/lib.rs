//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build container has no network access to crates.io, so this path
//! dependency stands in for the real crate. It provides:
//!
//! * [`RngCore`] / [`Rng`] with `random_range`, `random_bool`, `random`,
//! * [`SeedableRng`] with `seed_from_u64` and [`rngs::StdRng`] /
//!   [`rngs::SmallRng`] (both xoshiro256** here),
//! * [`seq::IndexedRandom::choose`] and [`seq::SliceRandom::shuffle`] for
//!   slices, and [`seq::index::sample`] for distinct-index sampling,
//! * a [`prelude`] matching the imports used by the workspace.
//!
//! All generators are deterministic for a fixed seed, which the seed
//! tests rely on (`deterministic_for_fixed_seed` and friends).

pub mod rngs;
pub mod seq;

pub use rngs::{SmallRng, StdRng};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirroring rand 0.9's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        // 53 uniform mantissa bits, the standard f64-from-u64 recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples a value of a [`StandardUniform`]-distributed type.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from their full domain via [`Rng::random`].
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Marker for types [`Rng::random_range`] can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Debiased multiply-shift (Lemire); span of 0 means the full
                // 2^64 domain which these integer widths cannot produce here.
                let mut x = rng.next_u64();
                let mut m = u128::from(x) * u128::from(span);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = u128::from(x) * u128::from(span);
                        lo = m as u64;
                    }
                }
                let offset = (m >> 64) as u64;
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                if high == <$t>::MAX {
                    if low == <$t>::MIN {
                        return rng.next_u64() as $t;
                    }
                    return <$t>::sample_half_open(rng, low - 1, high).wrapping_add(1);
                }
                <$t>::sample_half_open(rng, low, high + 1)
            }
        }
    )*};
}
impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators (rand 0.9's `SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Entropy-seeded generator (stands in for rand 0.9's free function
/// `rng()`). Unlike the real `ThreadRng`, each call advances one cached
/// per-thread counter to seed a **new owned** `StdRng` — streams from
/// separate calls are independent, not continuations of one generator.
pub fn rng() -> StdRng {
    use std::cell::Cell;
    use std::time::{SystemTime, UNIX_EPOCH};
    thread_local! {
        static CALL_COUNTER: Cell<u64> = const { Cell::new(0) };
    }
    let call = CALL_COUNTER.with(|c| {
        let n = c.get();
        c.set(n.wrapping_add(1));
        n
    });
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0x9e37_79b9_7f4a_7c15, |d| {
            u64::from(d.subsec_nanos()) ^ d.as_secs()
        });
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    tid.hash(&mut h);
    call.hash(&mut h);
    StdRng::seed_from_u64(nanos ^ h.finish())
}

/// Deprecated alias kept for rand 0.8-style call sites.
pub fn thread_rng() -> StdRng {
    rng()
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{rng, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u32 = rng.random_range(0..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn every_range_value_is_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
