//! Sequence-related sampling: slice helpers and distinct-index sampling.

use crate::{Rng, RngCore};

/// Random read-only access into slices (rand 0.9's `IndexedRandom`).
pub trait IndexedRandom {
    type Output;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// In-place slice shuffling (rand 0.9's `SliceRandom`).
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }
}

/// Distinct-index sampling, mirroring `rand::seq::index`.
pub mod index {
    use super::RngCore;

    /// A set of sampled indices (subset of rand's `IndexVec`).
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Iterates over the sampled indices.
        pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, usize>> {
            self.0.iter().copied()
        }
    }

    impl<'a> IntoIterator for &'a IndexVec {
        type Item = usize;
        type IntoIter = std::iter::Copied<std::slice::Iter<'a, usize>>;
        fn into_iter(self) -> Self::IntoIter {
            self.iter()
        }
    }

    impl IndexVec {
        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether the sample is empty.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }

        /// Consumes the sample into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }
    }

    impl IntoIterator for IndexVec {
        type Item = usize;
        type IntoIter = std::vec::IntoIter<usize>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly and
    /// in random order, via a sparse Fisher–Yates over a swap map.
    pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut swaps: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(amount);
        for i in 0..amount {
            let j = crate::Rng::random_range(&mut *rng, i..length);
            let vi = *swaps.get(&i).unwrap_or(&i);
            let vj = *swaps.get(&j).unwrap_or(&j);
            out.push(vj);
            swaps.insert(j, vi);
        }
        IndexVec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample(&mut rng, 10, 3);
            let mut v = s.into_vec();
            assert_eq!(v.len(), 3);
            assert!(v.iter().all(|&x| x < 10));
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), 3, "indices must be distinct");
        }
    }

    #[test]
    fn sample_full_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = sample(&mut rng, 6, 6).into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = vec![1, 2, 3, 4, 5, 6, 7, 8];
        ys.shuffle(&mut rng);
        let mut sorted = ys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
