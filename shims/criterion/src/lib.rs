//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build container has no network access to crates.io, so this path
//! dependency stands in for the real crate. Benchmarks keep criterion's
//! API shape (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`) but the analysis
//! is a plain wall-clock loop: each benchmark runs `sample_size`
//! iterations after one warm-up and reports min/mean per iteration.
//!
//! Honors `--bench`/`--test` harness flags by running everything; with
//! `--test` (as passed by `cargo test --benches`) each benchmark runs a
//! single iteration so test runs stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    /// One-iteration smoke mode (`--test`).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = name.into();
        run_one(&label, 10, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.sample_size,
            self.criterion.test_mode,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Benchmarks `f` with no input, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.criterion.test_mode, &mut f);
        self
    }

    /// Ends the group. (The shim reports per-benchmark, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `iters` measured times.
    // Mirrors the real criterion API, where `iter` is the timing driver,
    // not an Iterator constructor.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.reserve(self.iters);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        iters: if test_mode { 1 } else { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no measurement)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{label:<50} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        mean,
        b.samples.len(),
    );
}

/// Bundles benchmark functions under one name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
