//! End-to-end checks that the `proptest!` runner shrinks failing inputs:
//! deliberately failing properties whose expected panic message proves
//! the minimized witness (not just the original random input) is
//! reported.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Fails for every v ≥ 1, so greedy halving must bottom out at the
    // boundary witness v = 1 regardless of the first failing value.
    #[test]
    #[should_panic(expected = "inputs (shrunk")]
    fn integer_failure_reports_shrunk_input(v in 1u32..100_000) {
        prop_assert!(v == 0, "v = {v} is nonzero");
    }

    // The minimal witness for "contains an element ≥ 10" is a single
    // element — the report must show the one-element vector, proving
    // structural (not just element-wise) shrinking ran.
    #[test]
    #[should_panic(expected = "shrunk failure: assertion failed")]
    fn vector_failure_shrinks_structurally(v in prop::collection::vec(10u8..50, 3..6)) {
        prop_assert!(
            v.iter().all(|&x| x < 10),
            "vector contains a big element"
        );
    }

    // Plain panics (not prop_assert!) are caught, reported with inputs,
    // and shrunk like ordinary failures.
    #[test]
    #[should_panic(expected = "inputs")]
    fn body_panics_are_caught_and_reported(v in 5u64..1_000) {
        assert!(v < 5, "plain assert failure for {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Inputs whose types do not implement `Shrink` (here: a prop_map
    // struct) fall back to the unshrunk report instead of failing to
    // compile — the autoref fallback path.
    #[test]
    #[should_panic(expected = "inputs:")]
    fn unshrinkable_inputs_still_report(s in (1u8..9).prop_map(Opaque)) {
        prop_assert!(s.0 == 0, "opaque value {} is nonzero", s.0);
    }
}

#[derive(Clone, Debug)]
struct Opaque(u8);
