//! Numeric strategy helpers. Range strategies themselves are implemented
//! directly on `std::ops::Range`/`RangeInclusive` in [`crate::strategy`];
//! this module exists so `prop::num::*` paths resolve.

pub use crate::arbitrary::any;
