//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build container has no network access to crates.io, so this path
//! dependency stands in for the real crate. It keeps proptest's API shape
//! — [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`option::of`], `prop_oneof!`,
//! the `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Failures report the generated inputs verbatim **and** a shrunk
//! version: the runner walks bounded simplification passes over the
//! failing inputs (halved integers, shortened collections — see
//! [`shrink`]), keeping the simplest input that still fails. Shrinking
//! is value-level, not strategy-level, so a shrunk input can leave the
//! strategy's domain; both the original and the shrunk inputs are
//! always printed. Body panics are caught and treated as failures so
//! they get the same input report (expect the panic hook's output once
//! per failing shrink candidate while the search runs).
//!
//! Generation is **deterministic**: the RNG is seeded from the test's
//! module path and name, so a failure reproduces on every run and in CI.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod option;
pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(..)` etc. resolve, as
    /// they do under the real prelude.
    pub use crate as prop;
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                left, right, format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                left,
            )));
        }
    }};
}

/// Discards the current test case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. The optional leading `#![proptest_config(expr)]` sets the
/// config for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name),
            ));
            let mut cases_run: u32 = 0;
            let mut rejects: u32 = 0;
            while cases_run < config.cases {
                let inputs = ($(
                    $crate::strategy::Strategy::generate(&($strategy), &mut rng),
                )+);
                // Runs the body on one input tuple (the witness pins the
                // parameter type); panics become failures so they report
                // (and shrink) like `prop_assert!` ones.
                let run_case = $crate::shrink::constrain(&inputs, |inputs| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(inputs);
                    let caught = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ));
                    match caught {
                        ::std::result::Result::Ok(outcome) => outcome,
                        ::std::result::Result::Err(payload) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(
                                $crate::test_runner::panic_message(payload.as_ref()),
                            ),
                        ),
                    }
                });
                match run_case(&inputs) {
                    ::std::result::Result::Ok(()) => cases_run += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > config.max_global_rejects {
                            panic!(
                                "proptest `{}`: too many rejected cases ({} rejects for {} accepted)",
                                stringify!($name), rejects, cases_run,
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        // Bounded value-level shrinking: resolve candidate
                        // generation by autoref specialization so input
                        // tuples without `Shrink` simply do not shrink.
                        use $crate::shrink::{NoShrinkFallback as _, ShrinkCandidates as _};
                        let original_msg = ::std::clone::Clone::clone(&msg);
                        let min = $crate::shrink::minimize(
                            ::std::clone::Clone::clone(&inputs),
                            msg,
                            |t| (&$crate::shrink::ShrinkWrap(t)).candidates(),
                            &run_case,
                        );
                        if min.passes == 0 {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}\ninputs: {:#?}",
                                stringify!($name), cases_run, original_msg, inputs,
                            );
                        }
                        panic!(
                            "proptest `{}` failed after {} passing case(s): {}\n\
                             inputs (original): {:#?}\n\
                             inputs (shrunk, {} passes / {} runs): {:#?}\n\
                             shrunk failure: {}",
                            stringify!($name), cases_run, original_msg, inputs,
                            min.passes, min.runs, min.input, min.message,
                        );
                    }
                }
            }
        }
        $crate::__proptest_body! { ($config) $($rest)* }
    };
}
