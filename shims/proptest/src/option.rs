//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` from `inner` half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.bool_with(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
