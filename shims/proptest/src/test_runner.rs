//! Runner configuration, the case-level error type, and the
//! deterministic RNG behind every strategy.

use rand::{Rng, RngCore, SeedableRng};
use std::hash::{Hash, Hasher};

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); the runner generates a
    /// replacement instead of failing.
    Reject(String),
    /// The case failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A discard with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Extract a readable message from a caught panic payload (the runner
/// converts body panics into [`TestCaseError::Fail`] so the failing
/// inputs can be reported and shrunk).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The RNG strategies draw from. Deterministic per test so failures
/// reproduce; override the base seed with `PROPTEST_SHIM_SEED=<u64>`.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seeds from a stable hash of `name` (the test's module path and
    /// function name) combined with the optional env override.
    pub fn deterministic(name: &str) -> Self {
        let base: u64 = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x005c_00d1_a7e5);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(base ^ hasher.finish()),
        }
    }

    /// Uniform value in `range`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: rand::SampleRange<T>,
    {
        self.inner.random_range(range)
    }

    /// Uniform value in the inclusive `range`.
    pub fn range_inclusive<T, R>(&mut self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: rand::SampleRange<T>,
    {
        self.inner.random_range(range)
    }

    /// Uniform index below `n` (`n > 0`).
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }

    /// A coin flip with probability `p` of `true`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.inner.random_bool(p)
    }

    /// Raw 64 random bits, for full-domain `any::<T>()` strategies.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
