//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "invalid use of empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.range_inclusive(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
