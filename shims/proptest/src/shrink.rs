//! Basic input shrinking: when a case fails, the runner walks
//! simplification candidates of the generated inputs — halved integers,
//! shortened collections, dropped `Option`s — re-running the body on
//! each, and reports the smallest input that still fails alongside the
//! original.
//!
//! Unlike real proptest, shrinking operates on generated *values*, not
//! on the strategy that produced them, so a shrunk input can leave the
//! strategy's domain (e.g. `5usize..10` shrunk to `0`). That is fine
//! for a failure report — the original inputs are always shown too —
//! and a candidate only replaces the current minimum if the body still
//! *fails* on it, never if it passes or is rejected.
//!
//! Types without an obvious simplification order (custom structs built
//! via `prop_map`) simply do not shrink: the runner resolves candidate
//! generation through [`ShrinkWrap`]'s autoref specialization, which
//! falls back to "no candidates" for any type not implementing
//! [`Shrink`]. The whole search is bounded ([`MAX_SHRINK_RUNS`] body
//! re-executions, [`MAX_SHRINK_PASSES`] accepted simplifications), so a
//! pathological case cannot hang a test.

use crate::test_runner::TestCaseError;

/// Upper bound on body re-executions during one shrink search.
pub const MAX_SHRINK_RUNS: u32 = 256;

/// Upper bound on accepted simplification passes (each pass restarts
/// candidate generation from the new, smaller input).
pub const MAX_SHRINK_PASSES: u32 = 64;

/// A value that knows how to propose simpler versions of itself.
///
/// Candidates should be ordered simplest-first; the search takes the
/// first one that still fails and restarts from it.
pub trait Shrink: Sized {
    /// Strictly simpler candidate values, simplest first. An empty
    /// vector means the value is minimal.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    if v - 1 != 0 && v - 1 != v / 2 {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    // Negative values first try their magnitude.
                    if v < 0 && v != <$t>::MIN {
                        out.push(-v);
                    }
                    let half = v / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let step = v - v.signum();
                    if step != 0 && step != half {
                        out.push(step);
                    }
                }
                out
            }
        }
    )*};
}
impl_shrink_signed!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for char {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self == 'a' {
            Vec::new()
        } else {
            vec!['a']
        }
    }
}

impl Shrink for String {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let n = self.chars().count();
        let mut out = vec![String::new()];
        if n > 1 {
            out.push(self.chars().take(n / 2).collect());
            out.push(self.chars().take(n - 1).collect());
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => std::iter::once(None)
                .chain(v.shrink_candidates().into_iter().map(Some))
                .collect(),
        }
    }
}

/// How many elements element-wise vector shrinking touches, and how many
/// candidates it takes per element — keeps candidate lists small for
/// long vectors (the search is bounded anyway).
const VEC_ELEMENT_BUDGET: usize = 16;
const PER_ELEMENT_CANDIDATES: usize = 4;

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        if self.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Self> = vec![Vec::new()];
        if self.len() > 1 {
            // Structural shrinks: halves, then single-element removals.
            out.push(self[..self.len() / 2].to_vec());
            out.push(self[self.len() / 2..].to_vec());
            for i in 0..self.len().min(VEC_ELEMENT_BUDGET) {
                let mut shorter = self.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks: simplify one position at a time.
        for i in 0..self.len().min(VEC_ELEMENT_BUDGET) {
            for cand in self[i]
                .shrink_candidates()
                .into_iter()
                .take(PER_ELEMENT_CANDIDATES)
            {
                let mut simpler = self.clone();
                simpler[i] = cand;
                out.push(simpler);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink_candidates(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink_candidates() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}
impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Autoref-specialization shim: `(&ShrinkWrap(&value)).candidates()`
/// resolves to [`Shrink::shrink_candidates`] when the type implements
/// [`Shrink`] (the impl on `ShrinkWrap` itself wins at the first probe
/// step), and to an empty candidate list otherwise (the impl on
/// `&ShrinkWrap` is reached by autoref) — so the `proptest!` macro can
/// attempt shrinking on *any* input tuple without requiring the trait.
/// Both [`ShrinkCandidates`] and [`NoShrinkFallback`] must be in scope
/// at the call site.
pub struct ShrinkWrap<'a, T>(pub &'a T);

/// The specialized arm of the autoref dispatch (types with [`Shrink`]).
pub trait ShrinkCandidates<T> {
    /// Simpler candidate values, simplest first.
    fn candidates(&self) -> Vec<T>;
}

impl<T: Shrink> ShrinkCandidates<T> for ShrinkWrap<'_, T> {
    fn candidates(&self) -> Vec<T> {
        self.0.shrink_candidates()
    }
}

/// The fallback arm of the autoref dispatch (no shrinking).
pub trait NoShrinkFallback<T> {
    /// Simpler candidate values — always empty in the fallback.
    fn candidates(&self) -> Vec<T>;
}

impl<T> NoShrinkFallback<T> for &ShrinkWrap<'_, T> {
    fn candidates(&self) -> Vec<T> {
        Vec::new()
    }
}

/// Pin a case-runner closure's parameter type to the concrete input
/// tuple (the witness): without the expected signature this provides,
/// closure parameter inference would unify the parameter with whatever
/// the body does to it first (e.g. `&specs` feeding a `&[T]` argument
/// would infer an unsized tuple element).
pub fn constrain<T, F: Fn(&T) -> Result<(), TestCaseError>>(_witness: &T, f: F) -> F {
    f
}

/// Outcome of a bounded shrink search.
#[derive(Clone, Debug)]
pub struct Minimized<T> {
    /// The simplest input found that still fails.
    pub input: T,
    /// The failure message produced by that input.
    pub message: String,
    /// Accepted simplification passes (0 = the original was minimal or
    /// the input does not shrink).
    pub passes: u32,
    /// Total body re-executions spent searching.
    pub runs: u32,
}

/// Greedily minimize a failing input: walk `candidates` of the current
/// minimum, keep the first candidate that still fails, restart; stop
/// when no candidate fails or the [`MAX_SHRINK_RUNS`] /
/// [`MAX_SHRINK_PASSES`] bounds are hit. `run` must return `Err(Fail)`
/// for failing inputs; passing and rejected candidates are skipped.
pub fn minimize<T: Clone>(
    original: T,
    original_message: String,
    candidates: impl Fn(&T) -> Vec<T>,
    run: impl Fn(&T) -> Result<(), TestCaseError>,
) -> Minimized<T> {
    let mut min = Minimized {
        input: original,
        message: original_message,
        passes: 0,
        runs: 0,
    };
    'passes: while min.passes < MAX_SHRINK_PASSES {
        for cand in candidates(&min.input) {
            if min.runs >= MAX_SHRINK_RUNS {
                break 'passes;
            }
            min.runs += 1;
            if let Err(TestCaseError::Fail(msg)) = run(&cand) {
                min.input = cand;
                min.message = msg;
                min.passes += 1;
                continue 'passes;
            }
        }
        break;
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_shrink_toward_zero() {
        assert_eq!(100u32.shrink_candidates(), vec![0, 50, 99]);
        assert_eq!(1u32.shrink_candidates(), vec![0]);
        assert!(0u32.shrink_candidates().is_empty());
        assert_eq!((-8i32).shrink_candidates(), vec![0, 8, -4, -7]);
    }

    #[test]
    fn vectors_shrink_structurally_then_elementwise() {
        let cands = vec![4u8, 6].shrink_candidates();
        assert!(cands.contains(&vec![]));
        assert!(cands.contains(&vec![4]));
        assert!(cands.contains(&vec![6]));
        assert!(cands.contains(&vec![0, 6]), "element-wise shrink of [0]");
        assert!(cands.contains(&vec![4, 3]), "element-wise shrink of [1]");
    }

    #[test]
    fn tuples_shrink_one_coordinate_at_a_time() {
        let cands = (2u8, true).shrink_candidates();
        assert!(cands.contains(&(0, true)));
        assert!(cands.contains(&(1, true)));
        assert!(cands.contains(&(2, false)));
        assert!(!cands.contains(&(0, false)), "one coordinate per step");
    }

    #[test]
    #[allow(clippy::needless_borrow)] // the explicit `&` is the dispatch under test
    fn autoref_dispatch_falls_back_for_unshrinkable_types() {
        use super::{NoShrinkFallback as _, ShrinkCandidates as _};
        #[derive(Clone, Debug)]
        struct Opaque;
        let opaque = Opaque;
        let none: Vec<Opaque> = (&ShrinkWrap(&opaque)).candidates();
        assert!(none.is_empty());

        let some: Vec<u32> = (&ShrinkWrap(&6u32)).candidates();
        assert_eq!(some, vec![0, 3, 5]);
    }

    #[test]
    fn minimize_finds_the_boundary() {
        // Fails for values ≥ 17: the search must land exactly on 17.
        let min = minimize(
            400u32,
            "seed".to_string(),
            super::Shrink::shrink_candidates,
            |&v| {
                if v >= 17 {
                    Err(TestCaseError::fail(format!("{v} too big")))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(min.input, 17);
        assert_eq!(min.message, "17 too big");
        assert!(min.passes > 0);
        assert!(min.runs <= MAX_SHRINK_RUNS);
    }

    #[test]
    fn minimize_shrinks_vectors_to_the_failing_core() {
        // Fails whenever the vector contains an element > 9.
        let min = minimize(
            vec![3u8, 120, 7, 45],
            "seed".to_string(),
            super::Shrink::shrink_candidates,
            |v| {
                if v.iter().any(|&x| x > 9) {
                    Err(TestCaseError::fail("big element"))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(min.input, vec![10], "minimal failing witness");
    }

    #[test]
    fn minimize_respects_the_run_bound() {
        let calls = std::cell::Cell::new(0u32);
        let min = minimize(
            u64::MAX,
            "seed".to_string(),
            super::Shrink::shrink_candidates,
            |_| {
                calls.set(calls.get() + 1);
                Err(TestCaseError::fail("always fails"))
            },
        );
        assert!(min.runs <= MAX_SHRINK_RUNS);
        assert!(calls.get() <= MAX_SHRINK_RUNS);
        assert_eq!(min.input, 0, "always-failing case bottoms out at zero");
    }

    #[test]
    fn rejected_candidates_do_not_become_the_minimum() {
        // Odd values are "rejected" (out of domain); fails for even ≥ 10.
        let min = minimize(
            40u32,
            "seed".to_string(),
            super::Shrink::shrink_candidates,
            |&v| {
                if v % 2 == 1 {
                    Err(TestCaseError::reject("odd"))
                } else if v >= 10 {
                    Err(TestCaseError::fail("even and big"))
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(min.input % 2, 0, "rejected candidates skipped");
        assert!(min.input >= 10);
    }
}
