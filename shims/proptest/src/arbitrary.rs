//! `any::<T>()`: full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Full-domain strategy for `T` (see [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T> Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

/// Generates values uniformly over `T`'s whole domain.
pub fn any<T>() -> AnyStrategy<T>
where
    AnyStrategy<T>: Strategy,
{
    AnyStrategy(PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}
