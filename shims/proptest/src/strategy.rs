//! The [`Strategy`] trait and its combinators: how test inputs are
//! described. Unlike real proptest there is no shrinking — `generate`
//! produces a value directly from the runner's RNG.

use crate::test_runner::TestRng;
use std::fmt::Debug;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values. `Debug` so failures can print the
    /// inputs; `Clone` so the runner can both run the body and report.
    type Value: Debug + Clone;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug + Clone> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Debug + Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug + Clone> Union<V> {
    /// A union of the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug + Clone> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        loop {
            if let Some(c) = char::from_u32(rng.range(lo..hi)) {
                return c;
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
